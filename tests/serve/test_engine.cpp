// ServeEngine behaviour tests: ingest backpressure, first-N classification
// matching the offline featurizer bit-for-bit, idle eviction on stream
// virtual time, the shed ladder under overload, flush, the fault-injection
// matrix (every sequence fault at calm and overload pressure must complete
// with consistent accounting), and the watchdog detecting a stuck shard.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "net/fault.h"
#include "serve/engine.h"
#include "serve/flow_features.h"
#include "trafficgen/datasets.h"

namespace sugar::serve {
namespace {

std::shared_ptr<const FlowClassifier> zero_classifier() {
  FlowFeatureConfig fcfg;
  return std::make_shared<HeuristicClassifier>(flow_feature_dim(fcfg), 2,
                                               [](const float*) { return 0; });
}

std::vector<net::Packet> sample_stream(std::size_t flows_per_class = 2,
                                       double spurious = 0.0) {
  trafficgen::GenOptions opts;
  opts.seed = 31;
  opts.flows_per_class = flows_per_class;
  opts.spurious_fraction = spurious;
  return trafficgen::generate_iscx_vpn(opts).packets;
}

ServeConfig small_config() {
  ServeConfig cfg;
  cfg.table.shards = 4;
  cfg.table.max_flows = 256;
  cfg.queue_capacity = 64;
  cfg.batch_size = 32;
  cfg.record_verdicts = true;
  return cfg;
}

/// Accounting identity that must hold after any drain+flush: every offered
/// packet is either rejected at the queue or processed, and every created
/// flow left through exactly one eviction path or the final flush.
void expect_consistent(const ServeStats& s) {
  EXPECT_EQ(s.counters.packets_offered,
            s.counters.packets_rejected + s.counters.packets_processed);
  EXPECT_EQ(s.counters.flows_created,
            s.counters.evicted_idle + s.counters.evicted_early +
                s.counters.evicted_sampled + s.counters.evicted_flush +
                s.gauges.current_flows);
  EXPECT_LE(s.gauges.table_bytes, s.gauges.table_bytes_cap);
}

TEST(ServeEngine, OfferPumpClassifiesFlows) {
  const auto stream = sample_stream();
  ServeEngine engine(small_config(), zero_classifier());
  for (const auto& pkt : stream) {
    if (!engine.offer(pkt)) engine.pump();
    // Re-offer after pump: the queue has room again.
  }
  engine.drain();
  engine.flush();

  const auto stats = engine.stats();
  EXPECT_GT(stats.counters.packets_processed, 0u);
  EXPECT_GT(stats.counters.flows_created, 0u);
  EXPECT_GT(stats.counters.classified_at_n + stats.counters.classified_on_evict,
            0u);
  EXPECT_EQ(stats.gauges.current_flows, 0u);  // flush emptied the table
  const auto verdicts = engine.take_verdicts();
  EXPECT_EQ(verdicts.size(),
            stats.counters.classified_at_n + stats.counters.classified_on_evict);
  for (const auto& v : verdicts) EXPECT_EQ(v.label, 0);
}

TEST(ServeEngine, BackpressureIsExplicit) {
  ServeConfig cfg = small_config();
  cfg.queue_capacity = 8;
  const auto stream = sample_stream();
  ASSERT_GT(stream.size(), 16u);
  ServeEngine engine(cfg, zero_classifier());

  std::size_t accepted = 0, rejected = 0;
  for (std::size_t i = 0; i < 16; ++i)
    (engine.offer(stream[i]) ? accepted : rejected)++;
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(rejected, 8u);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.counters.packets_offered, 16u);
  EXPECT_EQ(stats.counters.packets_rejected, 8u);
  EXPECT_EQ(stats.gauges.queue_depth, 8u);
  EXPECT_EQ(stats.gauges.peak_queue_depth, 8u);
}

TEST(ServeEngine, FirstNVerdictMatchesOfflineFeatures) {
  // The online verdict at first-N must be computed from exactly the mean
  // feature the offline batch featurizer produces for the same prefix —
  // verified by a classifier that captures its input.
  FlowFeatureConfig fcfg;
  const std::size_t dim = flow_feature_dim(fcfg);
  struct Capture {
    std::mutex mu;  // classify() runs concurrently in shard workers
    std::vector<std::vector<float>> rows;
  };
  auto captured = std::make_shared<Capture>();
  auto classifier = std::make_shared<HeuristicClassifier>(
      dim, 2, [captured, dim](const float* f) {
        std::lock_guard<std::mutex> lock(captured->mu);
        captured->rows.emplace_back(f, f + dim);
        return 1;
      });

  const auto stream = sample_stream();
  ServeConfig cfg = small_config();
  // No overload pressure (queue stays far below the shed watermark) and no
  // mid-stream idle splits: every long-enough flow must classify at exactly
  // its first-N prefix.
  cfg.queue_capacity = 1024;
  cfg.batch_size = 64;
  cfg.idle_timeout_usec = 3'600'000'000ull;
  ServeEngine engine(cfg, classifier);
  for (std::size_t i = 0; i < stream.size();) {
    for (std::size_t k = 0; k < cfg.batch_size && i < stream.size(); ++k, ++i)
      ASSERT_TRUE(engine.offer(stream[i]));
    engine.pump();
  }
  engine.drain();
  engine.flush();
  EXPECT_EQ(engine.stats().counters.packets_shed_new_flow, 0u);

  const auto batch = batch_flow_features(stream, nullptr, fcfg,
                                         /*min_packets=*/cfg.features.first_n);
  ASSERT_FALSE(captured->rows.empty());
  ASSERT_GT(batch.x.rows(), 0u);
  // Every offline first-N feature row must appear bit-identically among the
  // online classifier inputs.
  std::size_t matched = 0;
  for (std::size_t r = 0; r < batch.x.rows(); ++r) {
    const float* want = batch.x.row(r);
    for (const auto& got : captured->rows) {
      if (std::equal(want, want + dim, got.begin(),
                     [](float a, float b) { return a == b; })) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_EQ(matched, batch.x.rows());
}

TEST(ServeEngine, IdleEvictionUsesStreamTime) {
  ServeConfig cfg = small_config();
  cfg.idle_timeout_usec = 1000;
  const auto stream = sample_stream();
  ServeEngine engine(cfg, zero_classifier());

  // Feed the first flows, then a packet far in the future: the idle sweep
  // at the next round must evict everything older than the timeout.
  for (std::size_t i = 0; i < 16; ++i) {
    while (!engine.offer(stream[i])) engine.pump();
  }
  engine.drain();
  const auto live_before = engine.stats().gauges.current_flows;
  ASSERT_GT(live_before, 0u);

  net::Packet future = stream[16];
  future.ts_usec = engine.stats().gauges.virtual_now_usec + 10'000'000;
  ASSERT_TRUE(engine.offer(future));
  engine.drain();
  const auto stats = engine.stats();
  EXPECT_GT(stats.counters.evicted_idle, 0u);
  EXPECT_LT(stats.gauges.current_flows, live_before + 1);
}

TEST(ServeEngine, EvictIdleNowSweepsAllShards) {
  ServeConfig cfg = small_config();
  cfg.idle_timeout_usec = 1000;
  const auto stream = sample_stream();
  ServeEngine engine(cfg, zero_classifier());
  for (std::size_t i = 0; i < 32; ++i) {
    while (!engine.offer(stream[i])) engine.pump();
  }
  engine.drain();
  ASSERT_GT(engine.stats().gauges.current_flows, 0u);

  const auto evicted =
      engine.evict_idle_now(engine.stats().gauges.virtual_now_usec + 1'000'000);
  EXPECT_GT(evicted, 0u);
  EXPECT_EQ(engine.stats().gauges.current_flows, 0u);
  EXPECT_EQ(engine.stats().counters.evicted_idle, evicted);
}

TEST(ServeEngine, ShedLadderEngagesUnderOverload) {
  // A tiny table and queue under a firehose: the ladder must step up, shed
  // observably, and keep the hard bounds.
  ServeConfig cfg;
  cfg.table.shards = 2;
  cfg.table.max_flows = 16;
  cfg.queue_capacity = 64;
  cfg.batch_size = 16;
  cfg.record_verdicts = true;
  const auto stream = sample_stream(6, 0.05);
  ServeEngine engine(cfg, zero_classifier());

  // Offer 4x faster than one pump can drain.
  std::size_t i = 0;
  while (i < stream.size()) {
    for (std::size_t k = 0; k < 4 * cfg.batch_size && i < stream.size(); ++k)
      engine.offer(stream[i++]);
    engine.pump();
  }
  engine.drain();
  engine.flush();

  const auto stats = engine.stats();
  EXPECT_GT(stats.counters.packets_rejected, 0u);  // stage-0 backpressure
  EXPECT_GT(stats.counters.shed_stage_enters, 0u);
  EXPECT_GT(stats.counters.packets_shed_new_flow +
                stats.counters.flows_rejected_full +
                stats.counters.evicted_early + stats.counters.evicted_sampled,
            0u);
  EXPECT_LE(stats.gauges.peak_flows, cfg.table.max_flows + cfg.table.shards);
  expect_consistent(stats);
}

TEST(ServeEngine, FaultMatrixStaysConsistent) {
  const auto base = sample_stream(3, 0.05);
  for (auto fault : {net::SequenceFault::ReorderWindow,
                     net::SequenceFault::DuplicateDelivery,
                     net::SequenceFault::TruncateMidFlow}) {
    net::FaultInjector inj(17);
    const auto mutated = inj.mutate_sequence(base, fault);
    for (const std::size_t per_round : {16u, 128u}) {  // calm and overload
      ServeConfig cfg;
      cfg.table.shards = 2;
      cfg.table.max_flows = 32;
      cfg.queue_capacity = 64;
      cfg.batch_size = 32;
      ServeEngine engine(cfg, zero_classifier());
      std::size_t i = 0;
      while (i < mutated.size()) {
        for (std::size_t k = 0; k < per_round && i < mutated.size(); ++k)
          engine.offer(mutated[i++]);
        engine.pump();
      }
      engine.drain();
      engine.flush();
      const auto stats = engine.stats();
      EXPECT_GT(stats.counters.packets_processed, 0u)
          << net::to_string(fault) << " per_round=" << per_round;
      expect_consistent(stats);
    }
  }
}

TEST(ServeEngine, MonotoneCountersAcrossSnapshots) {
  const auto stream = sample_stream();
  ServeEngine engine(small_config(), zero_classifier());
  ServeCounters prev;
  for (const auto& pkt : stream) {
    if (!engine.offer(pkt)) {
      engine.pump();
      const auto now = engine.stats().counters;
      EXPECT_TRUE(prev.monotone_le(now));
      prev = now;
    }
  }
  engine.drain();
  engine.flush();
  EXPECT_TRUE(prev.monotone_le(engine.stats().counters));
}

TEST(ServeEngine, WatchdogFlagsStuckShard) {
  ServeConfig cfg = small_config();
  cfg.watchdog_timeout_s = 0.2;
  std::atomic<bool> stall{true};
  cfg.shard_hook = [&](std::size_t shard) {
    if (shard == 0 && stall.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
      stall.store(false);  // stall exactly one round
    }
  };
  const auto stream = sample_stream();
  ServeEngine engine(cfg, zero_classifier());
  for (std::size_t i = 0; i < 32 && i < stream.size(); ++i)
    engine.offer(stream[i]);
  engine.drain();
  EXPECT_GE(engine.stats().counters.watchdog_stalls, 1u);

  // A healthy engine with the same watchdog reports nothing.
  ServeConfig healthy = small_config();
  healthy.watchdog_timeout_s = 5.0;
  ServeEngine engine2(healthy, zero_classifier());
  for (std::size_t i = 0; i < 32 && i < stream.size(); ++i)
    engine2.offer(stream[i]);
  engine2.drain();
  EXPECT_EQ(engine2.stats().counters.watchdog_stalls, 0u);
}

TEST(ServeEngine, VerdictCapCountsDrops) {
  ServeConfig cfg = small_config();
  cfg.record_verdicts = true;
  cfg.max_recorded_verdicts = 2;
  const auto stream = sample_stream();
  ServeEngine engine(cfg, zero_classifier());
  for (const auto& pkt : stream) {
    while (!engine.offer(pkt)) engine.pump();
  }
  engine.drain();
  engine.flush();
  const auto stats = engine.stats();
  EXPECT_EQ(engine.take_verdicts().size(), 2u);
  EXPECT_GT(stats.counters.verdicts_dropped, 0u);
}

}  // namespace
}  // namespace sugar::serve
