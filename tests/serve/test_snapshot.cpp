// Crash tolerance contract: a snapshot taken between pump() rounds, restored
// into a fresh engine, must make the replayed run bit-identical to an
// uninterrupted one — verdicts and every monotone counter, at any
// SUGAR_THREADS. The corruption corpus (truncations and single-bit flips at
// positions spread across the file) must always be rejected with a
// structured SnapshotError and degrade to a counted cold start; it must
// never crash, misparse silently, or leave a half-restored engine. These
// tests also run under the sanitizer configurations via scripts/check.sh.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/chaos.h"
#include "core/threadpool.h"
#include "serve/engine.h"
#include "serve/snapshot.h"
#include "trafficgen/datasets.h"

namespace sugar::serve {
namespace {

class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) { core::set_global_threads(n); }
  ~ScopedThreads() { core::set_global_threads(0); }
};

const std::size_t kWidths[] = {1, 2, 7};

std::vector<net::Packet> sample_stream() {
  trafficgen::GenOptions opts;
  opts.seed = 2027;
  opts.flows_per_class = 3;
  opts.spurious_fraction = 0.05;
  return trafficgen::generate_iscx_vpn(opts).packets;
}

std::shared_ptr<const FlowClassifier> parity_classifier() {
  FlowFeatureConfig fcfg;
  const std::size_t dim = flow_feature_dim(fcfg);
  return std::make_shared<HeuristicClassifier>(dim, 4, [dim](const float* f) {
    float acc = 0.0f;
    for (std::size_t d = 0; d < dim; ++d) acc += f[d];
    return static_cast<int>(static_cast<std::uint64_t>(acc) % 4);
  });
}

ServeConfig small_config() {
  ServeConfig cfg;
  cfg.table.shards = 4;
  cfg.table.max_flows = 256;
  cfg.queue_capacity = 512;
  cfg.batch_size = 64;
  cfg.record_verdicts = true;
  return cfg;
}

std::string describe(const Verdict& v) {
  std::ostringstream os;
  os << std::string(reinterpret_cast<const char*>(&v.key), sizeof v.key)
     << '|' << v.label << '|' << v.packets << '|' << v.feature_packets << '|'
     << to_string(v.reason) << '|' << v.first_ts_usec << '|' << v.last_ts_usec;
  return os.str();
}

/// Offers 96 packets per round (above batch_size, so the queue carries state
/// across rounds and into snapshots), pumps once, using the engine's own
/// stream_pos() as the replay cursor — exactly what a restored run resumes
/// from.
void drive_rounds(ServeEngine& engine, const std::vector<net::Packet>& stream,
                  std::size_t rounds) {
  for (std::size_t r = 0; r < rounds && engine.stream_pos() < stream.size();
       ++r) {
    std::size_t pos = engine.stream_pos();
    for (std::size_t k = 0; k < 96 && pos < stream.size(); ++k, ++pos)
      engine.offer(stream[pos]);
    engine.set_stream_pos(pos);
    engine.pump();
  }
}

struct RunResult {
  std::vector<std::string> verdicts;
  std::vector<std::uint64_t> counters;
};

RunResult finish(ServeEngine& engine, const std::vector<net::Packet>& stream) {
  drive_rounds(engine, stream, ~std::size_t{0});
  engine.drain();
  engine.flush();
  RunResult out;
  for (const auto& v : engine.take_verdicts()) out.verdicts.push_back(describe(v));
  out.counters = engine.stats().counters.to_values();
  return out;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/sugar_" + name + ".snap";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(SnapshotDeterminism, KillRestoreReplayIsBitIdenticalAtAllWidths) {
  const auto stream = sample_stream();
  const auto clf = parity_classifier();
  for (const std::size_t width : kWidths) {
    ScopedThreads threads(width);
    // Uninterrupted baseline at this width.
    ServeEngine baseline(small_config(), clf);
    const RunResult want = finish(baseline, stream);
    ASSERT_FALSE(want.verdicts.empty());

    for (const std::size_t kill_round : {std::size_t{2}, std::size_t{6}}) {
      const std::string path = temp_path("kill");
      {
        ServeEngine engine(small_config(), clf);
        drive_rounds(engine, stream, kill_round);
        ASSERT_TRUE(engine.save_snapshot(path).ok());
        // Engine destroyed: the crash. Verdicts were never taken — the
        // snapshot must carry them.
      }
      ServeEngine restored(small_config(), clf);
      ASSERT_TRUE(restored.restore_snapshot(path).ok());
      const RunResult got = finish(restored, stream);
      EXPECT_EQ(want.counters, got.counters)
          << "width " << width << " kill " << kill_round;
      ASSERT_EQ(want.verdicts.size(), got.verdicts.size())
          << "width " << width << " kill " << kill_round;
      for (std::size_t i = 0; i < want.verdicts.size(); ++i)
        ASSERT_EQ(want.verdicts[i], got.verdicts[i])
            << "verdict " << i << " width " << width << " kill " << kill_round;
      EXPECT_EQ(restored.recovery().snapshots_restored, 1u);
      core::real_io().remove_file(path);
    }
  }
}

TEST(SnapshotRoundTrip, RestoredEngineMatchesSavedState) {
  const auto stream = sample_stream();
  const auto clf = parity_classifier();
  const std::string path = temp_path("roundtrip");

  ServeEngine engine(small_config(), clf);
  drive_rounds(engine, stream, 4);
  ASSERT_TRUE(engine.save_snapshot(path).ok());
  EXPECT_EQ(engine.recovery().snapshots_saved, 1u);

  ServeEngine restored(small_config(), clf);
  ASSERT_TRUE(restored.restore_snapshot(path).ok());

  const ServeStats a = engine.stats();
  const ServeStats b = restored.stats();
  EXPECT_EQ(a.counters.to_values(), b.counters.to_values());
  EXPECT_EQ(a.gauges.current_flows, b.gauges.current_flows);
  EXPECT_EQ(a.gauges.peak_flows, b.gauges.peak_flows);
  EXPECT_EQ(a.gauges.queue_depth, b.gauges.queue_depth);
  EXPECT_EQ(a.gauges.shed_stage, b.gauges.shed_stage);
  EXPECT_EQ(a.gauges.virtual_now_usec, b.gauges.virtual_now_usec);
  EXPECT_EQ(a.latency.buckets(), b.latency.buckets());
  EXPECT_EQ(engine.stream_pos(), restored.stream_pos());

  const auto va = engine.take_verdicts();
  const auto vb = restored.take_verdicts();
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i)
    EXPECT_EQ(describe(va[i]), describe(vb[i]));
  core::real_io().remove_file(path);
}

TEST(SnapshotRoundTrip, ConfigMismatchRejectedAndEngineUntouched) {
  const auto stream = sample_stream();
  const auto clf = parity_classifier();
  const std::string path = temp_path("mismatch");

  ServeEngine engine(small_config(), clf);
  drive_rounds(engine, stream, 3);
  ASSERT_TRUE(engine.save_snapshot(path).ok());

  ServeConfig other = small_config();
  other.table.shards = 8;  // different shard map: flows would land wrong
  ServeEngine victim(other, clf);
  const SnapshotOutcome out = victim.restore_snapshot(path);
  EXPECT_EQ(out.error, SnapshotError::kConfigMismatch);
  EXPECT_EQ(victim.recovery().restore_failures, 1u);
  EXPECT_EQ(victim.recovery().cold_starts, 1u);
  EXPECT_EQ(victim.recovery().last_error, SnapshotError::kConfigMismatch);
  // The failed restore must leave the engine a clean cold start.
  const ServeStats stats = victim.stats();
  EXPECT_EQ(stats.counters.packets_offered, 0u);
  EXPECT_EQ(stats.gauges.current_flows, 0u);
  const RunResult still_works = finish(victim, stream);
  EXPECT_FALSE(still_works.verdicts.empty());
  core::real_io().remove_file(path);
}

TEST(SnapshotCorruption, MissingFileIsIoError) {
  ServeEngine engine(small_config(), parity_classifier());
  const SnapshotOutcome out =
      engine.restore_snapshot(temp_path("does_not_exist"));
  EXPECT_EQ(out.error, SnapshotError::kIo);
  EXPECT_EQ(engine.recovery().cold_starts, 1u);
}

TEST(SnapshotCorruption, BadMagicAndVersionDetected) {
  const auto stream = sample_stream();
  const auto clf = parity_classifier();
  const std::string path = temp_path("header");
  ServeEngine engine(small_config(), clf);
  drive_rounds(engine, stream, 2);
  ASSERT_TRUE(engine.save_snapshot(path).ok());
  const std::string clean = read_file(path);
  ASSERT_GE(clean.size(), 8u);

  std::string bad = clean;
  bad[0] = 'X';
  write_file(path, bad);
  ServeEngine v1(small_config(), clf);
  EXPECT_EQ(v1.restore_snapshot(path).error, SnapshotError::kBadMagic);

  bad = clean;
  bad[4] = static_cast<char>(0x7F);  // version little-endian low byte
  write_file(path, bad);
  ServeEngine v2(small_config(), clf);
  EXPECT_EQ(v2.restore_snapshot(path).error, SnapshotError::kBadVersion);
  core::real_io().remove_file(path);
}

TEST(SnapshotCorruption, EveryTruncationRejectedStructured) {
  const auto stream = sample_stream();
  const auto clf = parity_classifier();
  const std::string path = temp_path("truncate");
  {
    ServeEngine engine(small_config(), clf);
    drive_rounds(engine, stream, 3);
    ASSERT_TRUE(engine.save_snapshot(path).ok());
  }
  const std::string clean = read_file(path);
  ASSERT_GT(clean.size(), 64u);

  std::vector<std::size_t> cuts = {0, 1, 3, 4, 7, 8, 11, 15,
                                   clean.size() / 4, clean.size() / 2,
                                   clean.size() - 5, clean.size() - 1};
  for (std::size_t cut : cuts) {
    write_file(path, clean.substr(0, cut));
    ServeEngine victim(small_config(), clf);
    const SnapshotOutcome out = victim.restore_snapshot(path);
    EXPECT_NE(out.error, SnapshotError::kNone) << "cut at " << cut;
    EXPECT_EQ(victim.recovery().cold_starts, 1u) << "cut at " << cut;
    // Still a functional engine after the rejected restore.
    victim.offer(stream[0]);
    victim.pump();
  }

  // Trailing garbage after a fully valid snapshot is its own error.
  write_file(path, clean + "extra");
  ServeEngine victim(small_config(), clf);
  EXPECT_EQ(victim.restore_snapshot(path).error,
            SnapshotError::kTrailingGarbage);
  core::real_io().remove_file(path);
}

TEST(SnapshotCorruption, EveryBitFlipRejected) {
  const auto stream = sample_stream();
  const auto clf = parity_classifier();
  const std::string path = temp_path("bitflip");
  {
    ServeEngine engine(small_config(), clf);
    drive_rounds(engine, stream, 3);
    ASSERT_TRUE(engine.save_snapshot(path).ok());
  }
  const std::string clean = read_file(path);
  ASSERT_GT(clean.size(), 64u);

  // Deterministic corpus: positions strided across the whole file (headers,
  // payloads and CRC trailers all get hit), three bit positions each.
  const std::size_t stride = std::max<std::size_t>(1, clean.size() / 41);
  for (std::size_t pos = 0; pos < clean.size(); pos += stride) {
    for (int bit : {0, 3, 7}) {
      std::string bad = clean;
      bad[pos] = static_cast<char>(bad[pos] ^ (1 << bit));
      write_file(path, bad);
      ServeEngine victim(small_config(), clf);
      const SnapshotOutcome out = victim.restore_snapshot(path);
      EXPECT_NE(out.error, SnapshotError::kNone)
          << "flip at byte " << pos << " bit " << bit;
      // A rejected restore is a counted cold start with a usable engine.
      EXPECT_EQ(victim.recovery().cold_starts, 1u);
      victim.offer(stream[0]);
      victim.pump();
    }
  }
  core::real_io().remove_file(path);
}

TEST(SnapshotIo, InjectedWriteFaultsAreCountedSaveFailures) {
  const auto stream = sample_stream();
  const auto clf = parity_classifier();
  const std::string path = temp_path("io_fault");

  for (core::ChaosSite site : {core::ChaosSite::kIoWriteFail,
                               core::ChaosSite::kIoShortWrite,
                               core::ChaosSite::kIoRenameFail}) {
    core::ChaosConfig ccfg;
    ccfg.enabled = true;
    ccfg.seed = 99;
    ccfg.with(site, 1.0);
    core::ChaosInjector chaos(ccfg);
    core::ChaosIo io(chaos);

    ServeEngine engine(small_config(), clf);
    drive_rounds(engine, stream, 2);
    const SnapshotOutcome out = engine.save_snapshot(path, &io);
    EXPECT_EQ(out.error, SnapshotError::kIo) << to_string(site);
    EXPECT_EQ(engine.recovery().save_failures, 1u) << to_string(site);
    EXPECT_EQ(engine.recovery().snapshots_saved, 0u) << to_string(site);

    // The failed (possibly short) write must not have produced a file a
    // later restore would accept.
    ServeEngine victim(small_config(), clf);
    EXPECT_NE(victim.restore_snapshot(path).error, SnapshotError::kNone)
        << to_string(site);
    core::real_io().remove_file(path);
  }
}

}  // namespace
}  // namespace sugar::serve
