// Tests for the SUGC on-disk column store (dataset/store.h): round-trip of
// every column type across multiple row groups, cursor alignment, writer
// misuse and fault injection, and the corruption corpus — truncations,
// random bit flips and targeted footer/payload damage must surface as a
// typed StoreError or leave the data bit-identical; silent corruption and
// UB are the failure modes under test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/chaos.h"
#include "core/runerror.h"
#include "dataset/store.h"

namespace sugar::dataset {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sugar_store_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  fs::path dir_;
};

/// Deterministic reference data: one column of each type, sized to span
/// several row groups (group_rows below is 16, rows is 53 — a ragged tail).
struct Reference {
  std::vector<std::uint8_t> u8;
  std::vector<std::int32_t> i32;
  std::vector<float> f32;
  std::vector<std::uint64_t> u64;
  std::vector<std::vector<std::uint8_t>> bytes;
};

constexpr std::size_t kRows = 53;
constexpr std::size_t kGroupRows = 16;

Reference make_reference() {
  Reference ref;
  for (std::size_t r = 0; r < kRows; ++r) {
    ref.u8.push_back(static_cast<std::uint8_t>(r * 7 + 3));
    ref.i32.push_back(static_cast<std::int32_t>(r) * -91 + 17);
    ref.f32.push_back(static_cast<float>(r) * 0.37f - 5.0f);
    ref.u64.push_back(r * 0x9E3779B97F4A7C15ull);
    // Varying lengths including empty rows.
    std::vector<std::uint8_t> blob;
    for (std::size_t i = 0; i < r % 9; ++i)
      blob.push_back(static_cast<std::uint8_t>(r + i * 31));
    ref.bytes.push_back(std::move(blob));
  }
  return ref;
}

std::vector<ColumnSpec> make_schema() {
  return {{"u8", ColumnType::U8, {0.5f, 1.5f}},
          {"i32", ColumnType::I32, {}},
          {"f32", ColumnType::F32, {}},
          {"u64", ColumnType::U64, {}},
          {"blob", ColumnType::Bytes, {}}};
}

std::string write_reference_store(const fs::path& dir, const Reference& ref) {
  const std::string path = (dir / "ref.sugc").string();
  StoreWriter::Options opts;
  opts.group_rows = kGroupRows;
  opts.bins = 8;
  StoreWriter w(path, make_schema(), opts);
  StoreError err;
  for (std::size_t r = 0; r < kRows; ++r) {
    w.add_u8(0, ref.u8[r]);
    w.add_i32(1, ref.i32[r]);
    w.add_f32(2, ref.f32[r]);
    w.add_u64(3, ref.u64[r]);
    w.add_bytes(4, ref.bytes[r]);
    EXPECT_TRUE(w.end_row(&err)) << err.message;
  }
  EXPECT_TRUE(w.finalize(&err)) << err.message;
  return path;
}

/// Reads the whole store back. nullopt when any pin fails (err receives the
/// first failure); a successful read is compared field-by-field elsewhere.
std::optional<Reference> read_all(const StoreReader& r, StoreError* err) {
  Reference out;
  for (std::size_t col = 0; col < 5; ++col) {
    ColumnCursor cur(r, col);
    ColumnBlock blk;
    StoreError e;
    while (cur.next(blk, &e)) {
      for (std::uint32_t i = 0; i < blk.nrows; ++i) {
        switch (col) {
          case 0: out.u8.push_back(blk.as<std::uint8_t>()[i]); break;
          case 1: out.i32.push_back(blk.as<std::int32_t>()[i]); break;
          case 2: out.f32.push_back(blk.as<float>()[i]); break;
          case 3: out.u64.push_back(blk.as<std::uint64_t>()[i]); break;
          case 4: {
            auto span = blk.bytes_at(i);
            out.bytes.emplace_back(span.begin(), span.end());
            break;
          }
        }
      }
    }
    if (e) {
      if (err) *err = e;
      return std::nullopt;
    }
  }
  return out;
}

bool same(const Reference& a, const Reference& b) {
  return a.u8 == b.u8 && a.i32 == b.i32 && a.u64 == b.u64 &&
         a.bytes == b.bytes &&
         std::equal(a.f32.begin(), a.f32.end(), b.f32.begin(), b.f32.end(),
                    [](float x, float y) {
                      return std::memcmp(&x, &y, sizeof x) == 0;
                    });
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(StoreTest, RoundTripAllColumnTypesAcrossGroups) {
  const Reference ref = make_reference();
  const std::string path = write_reference_store(dir_, ref);

  StoreError err;
  auto r = StoreReader::open(path, &err);
  ASSERT_TRUE(r) << err.message;
  EXPECT_EQ(r->rows(), kRows);
  EXPECT_EQ(r->group_rows(), kGroupRows);
  EXPECT_EQ(r->groups(), (kRows + kGroupRows - 1) / kGroupRows);
  EXPECT_EQ(r->bins(), 8);
  EXPECT_EQ(r->column("blob"), 4);
  EXPECT_EQ(r->column("nope"), -1);
  ASSERT_EQ(r->schema().size(), 5u);
  EXPECT_EQ(r->schema()[0].cuts, (std::vector<float>{0.5f, 1.5f}));
  EXPECT_GT(r->payload_bytes(), 0u);

  auto got = read_all(*r, &err);
  ASSERT_TRUE(got.has_value()) << err.message;
  EXPECT_TRUE(same(ref, *got));
}

TEST_F(StoreTest, RowBlockCursorKeepsColumnsRowAligned) {
  const Reference ref = make_reference();
  const std::string path = write_reference_store(dir_, ref);
  StoreError err;
  auto r = StoreReader::open(path, &err);
  ASSERT_TRUE(r) << err.message;

  RowBlockCursor cur(*r, {0, 3});
  std::vector<ColumnBlock> blocks;
  std::size_t row = 0;
  while (cur.next(blocks, &err)) {
    ASSERT_EQ(blocks.size(), 2u);
    ASSERT_EQ(blocks[0].first_row, blocks[1].first_row);
    ASSERT_EQ(blocks[0].nrows, blocks[1].nrows);
    EXPECT_EQ(blocks[0].first_row, row);
    for (std::uint32_t i = 0; i < blocks[0].nrows; ++i) {
      EXPECT_EQ(blocks[0].as<std::uint8_t>()[i], ref.u8[row + i]);
      EXPECT_EQ(blocks[1].as<std::uint64_t>()[i], ref.u64[row + i]);
    }
    row += blocks[0].nrows;
  }
  EXPECT_FALSE(err) << err.message;
  EXPECT_EQ(row, kRows);
}

TEST_F(StoreTest, EndRowWithMissingColumnFails) {
  const std::string path = (dir_ / "partial.sugc").string();
  StoreWriter w(path, make_schema());
  w.add_u8(0, 1);  // the other four columns never receive a value
  StoreError err;
  EXPECT_FALSE(w.end_row(&err));
  EXPECT_EQ(err.kind, StoreErrorKind::kBadSchema);
}

TEST_F(StoreTest, OpenMissingFileIsIoError) {
  StoreError err;
  EXPECT_FALSE(StoreReader::open((dir_ / "absent.sugc").string(), &err));
  EXPECT_EQ(err.kind, StoreErrorKind::kIo);
}

TEST_F(StoreTest, ChaosIoFailuresPoisonTheWriterAndCommitNothing) {
  core::ChaosConfig cfg;
  cfg.enabled = true;
  cfg.seed = 11;
  cfg.with(core::ChaosSite::kIoWriteFail, 1.0);  // every append refused
  core::ChaosInjector chaos(cfg);
  core::ChaosIo io(chaos);
  const std::string path = (dir_ / "chaos.sugc").string();
  StoreWriter::Options opts;
  opts.group_rows = 4;
  opts.io = &io;
  StoreWriter w(path, {{"v", ColumnType::U8, {}}}, opts);
  StoreError err;
  bool failed = false;
  for (std::size_t r = 0; r < 16 && !failed; ++r) {
    w.add_u8(0, static_cast<std::uint8_t>(r));
    failed = !w.end_row(&err);
  }
  if (!failed) failed = !w.finalize(&err);
  EXPECT_TRUE(failed);
  EXPECT_EQ(err.kind, StoreErrorKind::kIo);
  EXPECT_FALSE(fs::exists(path));  // nothing half-visible committed
}

TEST_F(StoreTest, PagedCodeSourceRejectsNonCodeColumn) {
  const Reference ref = make_reference();
  const std::string path = write_reference_store(dir_, ref);
  StoreError err;
  auto r = StoreReader::open(path, &err);
  ASSERT_TRUE(r) << err.message;
  EXPECT_THROW(PagedCodeSource(*r, {1}), core::RunError);  // i32, not U8
}

// ---- corruption corpus --------------------------------------------------

TEST_F(StoreTest, TruncationAtEveryStrideIsATypedOpenError) {
  const Reference ref = make_reference();
  const std::string path = write_reference_store(dir_, ref);
  const std::string original = slurp(path);
  ASSERT_GT(original.size(), 128u);
  const std::string victim = (dir_ / "trunc.sugc").string();

  std::set<std::size_t> cuts{0, 1, 63, 64, 65, original.size() - 1,
                             original.size() - 17};
  for (std::size_t c = 2; c < original.size(); c += original.size() / 41)
    cuts.insert(c);
  for (std::size_t cut : cuts) {
    spit(victim, original.substr(0, cut));
    StoreError err;
    auto r = StoreReader::open(victim, &err);
    EXPECT_FALSE(r) << "truncation to " << cut << " bytes opened cleanly";
    EXPECT_NE(err.kind, StoreErrorKind::kNone) << "cut " << cut;
  }

  // Trailing garbage displaces the trailer: also a typed failure.
  spit(victim, original + std::string(40, '\x5a'));
  StoreError err;
  EXPECT_FALSE(StoreReader::open(victim, &err));
  EXPECT_NE(err.kind, StoreErrorKind::kNone);
}

TEST_F(StoreTest, BitFlipsAreDetectedOrHarmless) {
  const Reference ref = make_reference();
  const std::string path = write_reference_store(dir_, ref);
  const std::string original = slurp(path);
  const std::string victim = (dir_ / "flip.sugc").string();

  std::set<StoreErrorKind> kinds_seen;
  const std::size_t step = std::max<std::size_t>(1, original.size() / 211);
  for (std::size_t off = 0; off < original.size(); off += step) {
    std::string bytes = original;
    bytes[off] = static_cast<char>(bytes[off] ^ 0x10);
    spit(victim, bytes);
    StoreError err;
    auto r = StoreReader::open(victim, &err);
    if (!r) {
      // Rejected at open: structural damage, properly typed.
      EXPECT_NE(err.kind, StoreErrorKind::kNone) << "offset " << off;
      kinds_seen.insert(err.kind);
      continue;
    }
    StoreError read_err;
    auto got = read_all(*r, &read_err);
    if (!got.has_value()) {
      // Rejected at pin time: payload damage caught by the page CRC.
      EXPECT_EQ(read_err.kind, StoreErrorKind::kPageCrc) << "offset " << off;
      kinds_seen.insert(read_err.kind);
      continue;
    }
    // The flip landed in padding or write-side redundancy: the data served
    // must be bit-identical to the original. Anything else is silent
    // corruption — the exact failure mode the CRCs exist to prevent.
    EXPECT_TRUE(same(ref, *got)) << "silent corruption at offset " << off;
  }
  // The strided corpus must have exercised both detection layers.
  EXPECT_TRUE(kinds_seen.count(StoreErrorKind::kPageCrc))
      << "no flip landed in a page payload";
  EXPECT_GT(kinds_seen.size(), 1u) << "no flip damaged the footer or trailer";
}

TEST_F(StoreTest, TrailerAndFooterDamageAreTypedOpenErrors) {
  const Reference ref = make_reference();
  const std::string path = write_reference_store(dir_, ref);
  const std::string original = slurp(path);
  const std::string victim = (dir_ / "footer.sugc").string();

  // Trailer magic destroyed.
  std::string bytes = original;
  bytes[bytes.size() - 1] = 'X';
  spit(victim, bytes);
  StoreError err;
  EXPECT_FALSE(StoreReader::open(victim, &err));
  EXPECT_EQ(err.kind, StoreErrorKind::kBadMagic);

  // Footer offset pointing past the end of the file.
  bytes = original;
  for (std::size_t i = 0; i < 8; ++i)
    bytes[bytes.size() - 16 + i] = '\x7f';
  spit(victim, bytes);
  EXPECT_FALSE(StoreReader::open(victim, &err));
  EXPECT_NE(err.kind, StoreErrorKind::kNone);

  // Header magic destroyed.
  bytes = original;
  bytes[0] = 'Z';
  spit(victim, bytes);
  EXPECT_FALSE(StoreReader::open(victim, &err));
  EXPECT_EQ(err.kind, StoreErrorKind::kBadMagic);

  // Version this build does not speak.
  bytes = original;
  bytes[4] = '\x09';
  spit(victim, bytes);
  EXPECT_FALSE(StoreReader::open(victim, &err));
  EXPECT_EQ(err.kind, StoreErrorKind::kBadVersion);
}

}  // namespace
}  // namespace sugar::dataset
