#include <gtest/gtest.h>

#include <set>

#include "dataset/clean.h"
#include "dataset/task.h"

namespace sugar::dataset {
namespace {

trafficgen::GeneratedTrace iscx_trace() {
  trafficgen::GenOptions o;
  o.seed = 21;
  o.flows_per_class = 2;
  o.spurious_fraction = 0.05;
  auto trace = trafficgen::generate_iscx_vpn(o);
  CleaningOptions copts;
  clean_trace(trace, copts);
  return trace;
}

TEST(Task, ThreeViewsOfOneTrace) {
  auto trace = iscx_trace();
  auto app = make_task_dataset(trace, TaskId::VpnApp);
  auto service = make_task_dataset(trace, TaskId::VpnService);
  auto binary = make_task_dataset(trace, TaskId::VpnBinary);

  EXPECT_EQ(app.size(), service.size());
  EXPECT_EQ(app.size(), binary.size());
  EXPECT_EQ(app.num_classes, 16);
  EXPECT_EQ(service.num_classes, 6);
  EXPECT_EQ(binary.num_classes, 2);
  EXPECT_EQ(binary.class_names[0], "non-VPN");

  // Labels are consistent across views for the same packets.
  for (std::size_t i = 0; i < app.size(); ++i) {
    EXPECT_GE(app.label[i], 0);
    EXPECT_LT(app.label[i], 16);
    EXPECT_LT(service.label[i], 6);
    EXPECT_LT(binary.label[i], 2);
  }
}

TEST(Task, FlowIdsAreCanonical) {
  auto trace = iscx_trace();
  auto ds = make_task_dataset(trace, TaskId::VpnApp);
  auto flows = ds.flows();
  EXPECT_GT(flows.size(), 10u);
  // Every flow has a single label.
  auto labels = ds.flow_labels();
  for (std::size_t f = 0; f < flows.size(); ++f) {
    for (auto i : flows[f]) {
      EXPECT_EQ(ds.label[i], labels[f]);
      EXPECT_EQ(ds.flow_id[i], static_cast<int>(f));
    }
  }
}

TEST(Task, SubsetPreservesParallelism) {
  auto trace = iscx_trace();
  auto ds = make_task_dataset(trace, TaskId::VpnService);
  std::vector<std::size_t> idx{0, 5, 10, 11, 12};
  auto sub = ds.subset(idx);
  ASSERT_EQ(sub.size(), idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    EXPECT_EQ(sub.packets[i].data, ds.packets[idx[i]].data);
    EXPECT_EQ(sub.label[i], ds.label[idx[i]]);
    EXPECT_EQ(sub.flow_id[i], ds.flow_id[idx[i]]);
  }
  EXPECT_EQ(sub.num_classes, ds.num_classes);
}

TEST(Task, UnlabeledDatasetKeepsEverything) {
  auto trace = iscx_trace();
  auto ds = make_unlabeled_dataset(trace);
  EXPECT_EQ(ds.size(), trace.size());
  for (int l : ds.label) EXPECT_EQ(l, 0);
  EXPECT_EQ(ds.num_classes, 1);
}

TEST(Task, SpuriousPacketsExcludedFromTasks) {
  trafficgen::GenOptions o;
  o.seed = 22;
  o.flows_per_class = 2;
  o.spurious_fraction = 0.10;
  auto trace = trafficgen::generate_ustc_tfc(o);  // NOT cleaned
  auto ds = make_task_dataset(trace, TaskId::UstcApp);
  // Task extraction itself must drop unlabeled packets even without the
  // cleaning pass.
  EXPECT_EQ(ds.size(), trace.size() - trace.num_spurious());
  EXPECT_EQ(ds.num_classes, 20);
}

TEST(Task, ToStringRoundTrip) {
  EXPECT_EQ(to_string(TaskId::Tls120), "TLS-120");
  EXPECT_EQ(to_string(TaskId::VpnBinary), "VPN-binary");
  EXPECT_EQ(source_of(TaskId::UstcBinary), SourceDataset::UstcTfc);
  EXPECT_EQ(source_of(TaskId::Tls120), SourceDataset::CstnTls);
}

}  // namespace
}  // namespace sugar::dataset
