// Tests for the out-of-core training path: a forest/GBDT fit over
// dataset::PagedCodeSource must be bit-identical to the same fit over the
// fully resident codes — at every pool width (SUGAR_THREADS=1/2/7), every
// page size (group_rows small and one-group), and regardless of cache
// pressure. Also pins the streamed quantizer contract: ColumnSketch fed
// row-by-row produces exactly the cuts ml::BinnedMatrix derives resident.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "core/threadpool.h"
#include "dataset/store.h"
#include "ml/binned.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/matrix.h"

namespace sugar::dataset {
namespace {

namespace fs = std::filesystem;

class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) { core::set_global_threads(n); }
  ~ScopedThreads() { core::set_global_threads(0); }
};

constexpr std::size_t kRows = 700;
constexpr std::size_t kCols = 8;
constexpr int kBins = 16;
constexpr int kClasses = 4;

/// Gaussian blobs with per-class structure, deterministic.
ml::Matrix make_x() {
  ml::Matrix x(kRows, kCols);
  std::mt19937_64 rng(97);
  std::normal_distribution<float> noise(0.0f, 0.8f);
  for (std::size_t r = 0; r < kRows; ++r)
    for (std::size_t c = 0; c < kCols; ++c)
      x(r, c) = static_cast<float>((r % kClasses) * 2 + (c % 3)) + noise(rng);
  return x;
}

std::vector<int> make_y() {
  std::vector<int> y(kRows);
  for (std::size_t r = 0; r < kRows; ++r)
    y[r] = static_cast<int>(r % kClasses);
  return y;
}

struct CodeTable {
  std::vector<std::vector<std::uint8_t>> codes;  // [col][row]
  std::vector<std::vector<float>> cuts;
};

CodeTable quantize(const ml::Matrix& x) {
  CodeTable t;
  t.codes.resize(kCols);
  t.cuts.resize(kCols);
  for (std::size_t c = 0; c < kCols; ++c) {
    ml::ColumnSketch sketch(kBins);
    for (std::size_t r = 0; r < kRows; ++r) sketch.add(x(r, c));
    t.cuts[c] = sketch.finalize();
    t.codes[c].resize(kRows);
    for (std::size_t r = 0; r < kRows; ++r)
      t.codes[c][r] =
          static_cast<std::uint8_t>(ml::quantize_bin(t.cuts[c], x(r, c)));
  }
  return t;
}

std::string write_code_store(const fs::path& dir, const CodeTable& t,
                             const std::vector<int>& y,
                             std::size_t group_rows) {
  const std::string path =
      (dir / ("codes_" + std::to_string(group_rows) + ".sugc")).string();
  std::vector<ColumnSpec> schema;
  for (std::size_t c = 0; c < kCols; ++c)
    schema.push_back(
        {"f" + std::to_string(c), ColumnType::U8, t.cuts[c]});
  schema.push_back({"y", ColumnType::I32, {}});
  StoreWriter::Options opts;
  opts.group_rows = group_rows;
  opts.bins = kBins;
  StoreWriter w(path, schema, opts);
  StoreError err;
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t c = 0; c < kCols; ++c) w.add_u8(c, t.codes[c][r]);
    w.add_i32(kCols, y[r]);
    EXPECT_TRUE(w.end_row(&err)) << err.message;
  }
  EXPECT_TRUE(w.finalize(&err)) << err.message;
  return path;
}

class PagedFitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sugar_paged_fit_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  fs::path dir_;
};

TEST_F(PagedFitTest, ColumnSketchMatchesBinnedMatrixCuts) {
  const ml::Matrix x = make_x();
  const ml::BinnedMatrix bm(x, kBins);
  const CodeTable t = quantize(x);
  for (std::size_t c = 0; c < kCols; ++c) {
    EXPECT_EQ(t.cuts[c], bm.cuts(c)) << "column " << c;
    for (std::size_t r = 0; r < kRows; ++r)
      ASSERT_EQ(t.codes[c][r], bm.codes(c)[r])
          << "code mismatch at (" << r << ", " << c << ")";
  }
}

TEST_F(PagedFitTest, ForestPagedFitIsBitIdenticalAcrossWidthsAndPageSizes) {
  const ml::Matrix x = make_x();
  const std::vector<int> y = make_y();
  const CodeTable t = quantize(x);
  const ResidentCodeSource resident(t.codes, t.cuts, kBins);

  ml::ForestConfig cfg;
  cfg.num_trees = 4;
  cfg.seed = 7;
  cfg.tree.max_depth = 6;
  cfg.tree.features_per_split = 3;
  cfg.tree.histogram_bins = kBins;

  // Reference model: resident source, single thread.
  std::vector<int> ref_pred;
  std::vector<double> ref_imp;
  {
    ScopedThreads one(1);
    ml::RandomForest rf(cfg);
    rf.fit_binned(resident, y, kClasses);
    ref_pred = rf.predict(x);
    ref_imp = rf.feature_importance();
  }

  for (const std::size_t group_rows : {64u, 4096u}) {
    const std::string path = write_code_store(dir_, t, y, group_rows);
    StoreError err;
    auto reader = StoreReader::open(path, &err);
    ASSERT_TRUE(reader) << err.message;
    std::vector<std::size_t> code_cols;
    for (std::size_t c = 0; c < kCols; ++c) code_cols.push_back(c);
    const PagedCodeSource paged(*reader, code_cols);
    EXPECT_EQ(paged.rows(), kRows);
    EXPECT_EQ(paged.bins(), kBins);

    for (const std::size_t width : {1u, 2u, 7u}) {
      ScopedThreads scoped(width);
      ml::RandomForest rf(cfg);
      rf.fit_binned(paged, y, kClasses);
      EXPECT_EQ(rf.predict(x), ref_pred)
          << "group_rows=" << group_rows << " threads=" << width;
      EXPECT_EQ(rf.feature_importance(), ref_imp)
          << "group_rows=" << group_rows << " threads=" << width;

      // The resident source must agree at this width too (width
      // invariance, not just resident/paged equivalence).
      ml::RandomForest rf_res(cfg);
      rf_res.fit_binned(resident, y, kClasses);
      EXPECT_EQ(rf_res.predict(x), ref_pred) << "threads=" << width;
    }
  }
}

TEST_F(PagedFitTest, GbdtPagedFitIsBitIdenticalAcrossWidthsAndPageSizes) {
  const ml::Matrix x = make_x();
  const std::vector<int> y = make_y();
  const CodeTable t = quantize(x);
  const ResidentCodeSource resident(t.codes, t.cuts, kBins);

  ml::GbdtConfig cfg;
  cfg.rounds = 6;
  cfg.seed = 13;
  cfg.tree.max_depth = 4;
  cfg.tree.histogram_bins = kBins;

  std::vector<int> ref_pred;
  std::vector<double> ref_imp;
  {
    ScopedThreads one(1);
    ml::GradientBoosting gb(cfg);
    gb.fit_binned(resident, y, kClasses);
    ref_pred = gb.predict(x);
    ref_imp = gb.feature_importance();
  }
  ASSERT_FALSE(ref_pred.empty());

  for (const std::size_t group_rows : {64u, 4096u}) {
    const std::string path = write_code_store(dir_, t, y, group_rows);
    StoreError err;
    auto reader = StoreReader::open(path, &err);
    ASSERT_TRUE(reader) << err.message;
    std::vector<std::size_t> code_cols;
    for (std::size_t c = 0; c < kCols; ++c) code_cols.push_back(c);
    const PagedCodeSource paged(*reader, code_cols);

    for (const std::size_t width : {1u, 2u, 7u}) {
      ScopedThreads scoped(width);
      ml::GradientBoosting gb(cfg);
      gb.fit_binned(paged, y, kClasses);
      EXPECT_EQ(gb.predict(x), ref_pred)
          << "group_rows=" << group_rows << " threads=" << width;
      EXPECT_EQ(gb.feature_importance(), ref_imp)
          << "group_rows=" << group_rows << " threads=" << width;
    }
  }
}

TEST_F(PagedFitTest, BinnedMatrixAsSourceMatchesResidentCodes) {
  // ml::BinnedMatrix is itself a BinnedColumnSource; feeding it to
  // fit_binned must agree with the extracted resident codes — the sketch,
  // the codes and the source plumbing are one contract.
  const ml::Matrix x = make_x();
  const std::vector<int> y = make_y();
  const ml::BinnedMatrix bm(x, kBins);
  const CodeTable t = quantize(x);
  const ResidentCodeSource resident(t.codes, t.cuts, kBins);

  ml::ForestConfig cfg;
  cfg.num_trees = 3;
  cfg.seed = 5;
  cfg.tree.max_depth = 5;
  cfg.tree.histogram_bins = kBins;

  ScopedThreads one(1);
  ml::RandomForest a(cfg), b(cfg);
  a.fit_binned(bm, y, kClasses);
  b.fit_binned(resident, y, kClasses);
  EXPECT_EQ(a.predict(x), b.predict(x));
  EXPECT_EQ(a.feature_importance(), b.feature_importance());
}

}  // namespace
}  // namespace sugar::dataset
