#include <gtest/gtest.h>

#include "dataset/transforms.h"

namespace sugar::dataset {
namespace {

PacketDataset make_ds() {
  trafficgen::GenOptions o;
  o.seed = 8;
  o.flows_per_class = 2;
  auto trace = trafficgen::generate_cstn_tls120(o);
  auto ds = make_task_dataset(trace, TaskId::Tls120);
  // Work on a small slice to keep the test fast.
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < std::min<std::size_t>(ds.size(), 300); ++i)
    idx.push_back(i);
  return ds.subset(idx);
}

TEST(Transforms, WithoutImplicitIdsChangesSeqAckAndTimestamps) {
  auto ds = make_ds();
  auto original = ds;
  apply_ablation(ds, AblationSpec::without_implicit_ids(), 3);

  std::size_t tcp_count = 0, seq_changed = 0, ts_changed = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (!ds.parsed[i].tcp) continue;
    ++tcp_count;
    if (ds.parsed[i].tcp->seq != original.parsed[i].tcp->seq) ++seq_changed;
    if (original.parsed[i].tcp->options.timestamp &&
        ds.parsed[i].tcp->options.timestamp !=
            original.parsed[i].tcp->options.timestamp)
      ++ts_changed;
    // Non-targeted fields untouched.
    EXPECT_EQ(ds.parsed[i].tcp->window, original.parsed[i].tcp->window);
    EXPECT_EQ(ds.parsed[i].ipv4->src, original.parsed[i].ipv4->src);
    EXPECT_EQ(ds.parsed[i].payload_len, original.parsed[i].payload_len);
  }
  ASSERT_GT(tcp_count, 0u);
  EXPECT_EQ(seq_changed, tcp_count);
  EXPECT_GT(ts_changed, 0u);
}

TEST(Transforms, ZeroIpSpec) {
  auto ds = make_ds();
  apply_ablation(ds, {.zero_ip = true}, 4);
  for (const auto& p : ds.parsed) {
    if (!p.ipv4) continue;
    EXPECT_EQ(p.ipv4->src.value, 0u);
    EXPECT_EQ(p.ipv4->dst.value, 0u);
  }
}

TEST(Transforms, ZeroHeaderKeepsParseCacheMeaningful) {
  auto ds = make_ds();
  auto original = ds;
  apply_ablation(ds, {.zero_header = true}, 5);
  // Raw bytes of the header region are zero; packet count unchanged.
  EXPECT_EQ(ds.size(), original.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    std::size_t l3 = original.parsed[i].l3_offset;
    EXPECT_EQ(ds.packets[i].data[l3], 0);
  }
}

TEST(Transforms, StripPayloadShrinksPackets) {
  auto ds = make_ds();
  auto original = ds;
  apply_ablation(ds, {.strip_payload = true}, 6);
  bool any_shrunk = false;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_LE(ds.packets[i].data.size(), original.packets[i].data.size());
    EXPECT_EQ(ds.parsed[i].payload_len, 0u);
    any_shrunk = any_shrunk ||
                 ds.packets[i].data.size() < original.packets[i].data.size();
  }
  EXPECT_TRUE(any_shrunk);
}

TEST(Transforms, EmptySpecIsNoop) {
  auto ds = make_ds();
  auto original = ds;
  apply_ablation(ds, {}, 7);
  for (std::size_t i = 0; i < ds.size(); ++i)
    EXPECT_EQ(ds.packets[i].data, original.packets[i].data);
}

TEST(Transforms, AblationIsDeterministic) {
  auto a = make_ds();
  auto b = make_ds();
  apply_ablation(a, AblationSpec::without_implicit_ids(), 99);
  apply_ablation(b, AblationSpec::without_implicit_ids(), 99);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.packets[i].data, b.packets[i].data);
}

}  // namespace
}  // namespace sugar::dataset
