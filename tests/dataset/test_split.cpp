#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "dataset/split.h"

namespace sugar::dataset {
namespace {

PacketDataset make_ds(std::uint64_t seed = 5) {
  trafficgen::GenOptions o;
  o.seed = seed;
  o.flows_per_class = 3;
  auto trace = trafficgen::generate_iscx_vpn(o);
  return make_task_dataset(trace, TaskId::VpnApp);
}

/// Property sweep over seeds: the per-flow split must never let a flow
/// straddle the boundary, and both splits must cover every packet exactly
/// once.
class SplitProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplitProperties, PerFlowNeverStraddles) {
  auto ds = make_ds();
  SplitOptions opts;
  opts.policy = SplitPolicy::PerFlow;
  opts.seed = GetParam();
  auto split = split_dataset(ds, opts);

  std::unordered_set<int> train_flows, test_flows;
  for (auto i : split.train) train_flows.insert(ds.flow_id[i]);
  for (auto i : split.test) test_flows.insert(ds.flow_id[i]);
  for (int f : test_flows) EXPECT_EQ(train_flows.count(f), 0u);

  EXPECT_EQ(split.train.size() + split.test.size(), ds.size());
  std::set<std::size_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), ds.size()) << "every packet assigned exactly once";
}

TEST_P(SplitProperties, PerPacketStraddles) {
  // The flawed policy must show the flaw: most flows straddle.
  auto ds = make_ds();
  SplitOptions opts;
  opts.policy = SplitPolicy::PerPacket;
  opts.seed = GetParam();
  auto split = split_dataset(ds, opts);

  std::unordered_set<int> train_flows, test_flows;
  for (auto i : split.train) train_flows.insert(ds.flow_id[i]);
  for (auto i : split.test) test_flows.insert(ds.flow_id[i]);
  std::size_t straddle = 0;
  for (int f : test_flows) straddle += train_flows.count(f);
  EXPECT_GT(straddle, test_flows.size() / 2);
}

TEST_P(SplitProperties, TrainFractionRespected) {
  auto ds = make_ds();
  for (auto policy : {SplitPolicy::PerPacket, SplitPolicy::PerFlow}) {
    SplitOptions opts;
    opts.policy = policy;
    opts.seed = GetParam();
    opts.train_fraction = 0.875;
    auto split = split_dataset(ds, opts);
    double frac = static_cast<double>(split.train.size()) /
                  static_cast<double>(ds.size());
    EXPECT_NEAR(frac, 0.875, 0.08) << to_string(policy);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitProperties,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

TEST(Split, BalanceTrainEqualizesClasses) {
  auto ds = make_ds();
  SplitOptions opts;
  opts.policy = SplitPolicy::PerFlow;
  auto split = split_dataset(ds, opts);
  auto balanced = balance_train(ds, split.train, 3);

  std::unordered_map<int, std::size_t> per_class;
  for (auto i : balanced) ++per_class[ds.label[i]];
  std::size_t first = per_class.begin()->second;
  for (const auto& [cls, n] : per_class) EXPECT_EQ(n, first);
  EXPECT_LE(balanced.size(), split.train.size());
}

TEST(Split, StratifiedSampleKeepsProportions) {
  auto ds = make_ds();
  std::vector<std::size_t> all(ds.size());
  std::iota(all.begin(), all.end(), 0);
  auto sample = stratified_sample(ds, all, 0.25, 9);

  std::unordered_map<int, double> full_frac, samp_frac;
  for (auto i : all) full_frac[ds.label[i]] += 1.0;
  for (auto i : sample) samp_frac[ds.label[i]] += 1.0;
  for (auto& [cls, n] : full_frac) {
    double f = n / static_cast<double>(all.size());
    double s = samp_frac[cls] / static_cast<double>(sample.size());
    EXPECT_NEAR(s, f, 0.05) << "class " << cls;
  }
}

TEST(Split, CapFlowLength) {
  auto ds = make_ds();
  std::vector<std::size_t> all(ds.size());
  std::iota(all.begin(), all.end(), 0);
  auto capped = cap_flow_length(ds, all, 5, 11);
  std::unordered_map<int, std::size_t> per_flow;
  for (auto i : capped) ++per_flow[ds.flow_id[i]];
  for (const auto& [f, n] : per_flow) EXPECT_LE(n, 5u);
}

TEST(Split, KFoldFlowConsistent) {
  auto ds = make_ds();
  SplitOptions opts;
  opts.policy = SplitPolicy::PerFlow;
  auto split = split_dataset(ds, opts);
  auto folds = kfold(ds, split.train, 3, SplitPolicy::PerFlow, 13);
  ASSERT_EQ(folds.size(), 3u);

  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.test.size(), split.train.size());
    std::unordered_set<int> tr, va;
    for (auto i : fold.train) tr.insert(ds.flow_id[i]);
    for (auto i : fold.test) va.insert(ds.flow_id[i]);
    for (int f : va) EXPECT_EQ(tr.count(f), 0u);
  }
  // Each packet is in the validation part of exactly one fold.
  std::unordered_map<std::size_t, int> val_count;
  for (const auto& fold : folds)
    for (auto i : fold.test) ++val_count[i];
  for (auto i : split.train) EXPECT_EQ(val_count[i], 1) << "packet " << i;
}

TEST(Split, DeterministicForSeed) {
  auto ds = make_ds();
  SplitOptions opts;
  opts.policy = SplitPolicy::PerFlow;
  opts.seed = 21;
  auto a = split_dataset(ds, opts);
  auto b = split_dataset(ds, opts);
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.test, b.test);
}

}  // namespace
}  // namespace sugar::dataset
