#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "dataset/advanced_split.h"

namespace sugar::dataset {
namespace {

PacketDataset make_ds(std::uint64_t seed = 9) {
  trafficgen::GenOptions o;
  o.seed = seed;
  o.flows_per_class = 4;
  auto trace = trafficgen::generate_iscx_vpn(o);
  return make_task_dataset(trace, TaskId::VpnApp);
}

class AdvancedSplitProperties
    : public ::testing::TestWithParam<AdvancedSplitPolicy> {};

TEST_P(AdvancedSplitProperties, FlowConsistentAndComplete) {
  auto ds = make_ds();
  AdvancedSplitOptions opts;
  opts.policy = GetParam();
  auto split = advanced_split(ds, opts);

  // Covers everything exactly once.
  EXPECT_EQ(split.train.size() + split.test.size(), ds.size());
  std::set<std::size_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), ds.size());

  // Flow-consistency: the advanced policies subsume per-flow.
  std::unordered_set<int> train_flows, test_flows;
  for (auto i : split.train) train_flows.insert(ds.flow_id[i]);
  for (auto i : split.test) test_flows.insert(ds.flow_id[i]);
  for (int f : test_flows) EXPECT_EQ(train_flows.count(f), 0u);

  EXPECT_GT(split.train.size(), split.test.size());
}

INSTANTIATE_TEST_SUITE_P(Policies, AdvancedSplitProperties,
                         ::testing::Values(AdvancedSplitPolicy::PerClient,
                                           AdvancedSplitPolicy::PerTime,
                                           AdvancedSplitPolicy::PerSession),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(AdvancedSplit, PerClientKeepsClientsWhole) {
  auto ds = make_ds();
  AdvancedSplitOptions opts;
  opts.policy = AdvancedSplitPolicy::PerClient;
  auto split = advanced_split(ds, opts);

  auto flows = ds.flows();
  std::unordered_map<int, bool> flow_in_train;
  for (auto i : split.train) flow_in_train[ds.flow_id[i]] = true;
  for (auto i : split.test) flow_in_train.emplace(ds.flow_id[i], false);

  std::map<std::string, std::set<bool>> client_sides;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (flows[f].empty()) continue;
    auto client = flow_client(ds, flows[f]).to_string();
    client_sides[client].insert(flow_in_train[static_cast<int>(f)]);
  }
  for (const auto& [client, sides] : client_sides)
    EXPECT_EQ(sides.size(), 1u) << "client " << client << " straddles the split";
}

TEST(AdvancedSplit, PerTimeIsChronological) {
  auto ds = make_ds();
  AdvancedSplitOptions opts;
  opts.policy = AdvancedSplitPolicy::PerTime;
  auto split = advanced_split(ds, opts);

  // Flow start times: max over train <= min over test.
  auto flows = ds.flows();
  auto flow_start = [&](int fid) {
    std::uint64_t start = UINT64_MAX;
    for (std::size_t i : flows[static_cast<std::size_t>(fid)])
      start = std::min(start, ds.packets[i].ts_usec);
    return start;
  };
  std::uint64_t max_train = 0, min_test = UINT64_MAX;
  std::unordered_set<int> seen_train, seen_test;
  for (auto i : split.train)
    if (seen_train.insert(ds.flow_id[i]).second)
      max_train = std::max(max_train, flow_start(ds.flow_id[i]));
  for (auto i : split.test)
    if (seen_test.insert(ds.flow_id[i]).second)
      min_test = std::min(min_test, flow_start(ds.flow_id[i]));
  EXPECT_LE(max_train, min_test);
}

TEST(AdvancedSplit, PerSessionAssignsBlocks) {
  auto ds = make_ds();
  AdvancedSplitOptions opts;
  opts.policy = AdvancedSplitPolicy::PerSession;
  opts.sessions = 6;
  auto split = advanced_split(ds, opts);
  EXPECT_GT(split.test.size(), 0u);
  EXPECT_GT(split.train.size(), 0u);
}

TEST(AdvancedSplit, DeterministicForSeed) {
  auto ds = make_ds();
  AdvancedSplitOptions opts;
  opts.policy = AdvancedSplitPolicy::PerClient;
  opts.seed = 5;
  auto a = advanced_split(ds, opts);
  auto b = advanced_split(ds, opts);
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.test, b.test);
}

}  // namespace
}  // namespace sugar::dataset
