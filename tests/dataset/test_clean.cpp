#include <gtest/gtest.h>

#include "dataset/clean.h"
#include "net/parser.h"

namespace sugar::dataset {
namespace {

trafficgen::GeneratedTrace make_trace(double spurious) {
  trafficgen::GenOptions o;
  o.seed = 3;
  o.flows_per_class = 2;
  o.spurious_fraction = spurious;
  return trafficgen::generate_ustc_tfc(o);
}

TEST(Clean, ExtraneousFilterRemovesAllSpurious) {
  auto trace = make_trace(0.10);
  std::size_t spurious_before = trace.num_spurious();
  ASSERT_GT(spurious_before, 0u);
  std::size_t total_before = trace.size();

  CleaningOptions opts;
  auto report = clean_trace(trace, opts);

  EXPECT_EQ(trace.num_spurious(), 0u);
  EXPECT_EQ(report.total_packets, total_before);
  EXPECT_EQ(report.removed_spurious_total(), spurious_before);
  EXPECT_EQ(trace.size(), total_before - spurious_before);
  EXPECT_NEAR(report.removed_spurious_fraction(), 0.10, 0.03);

  // Arrays stay parallel.
  EXPECT_EQ(trace.packets.size(), trace.labels.size());
  EXPECT_EQ(trace.packets.size(), trace.flow_of.size());

  // Nothing left classifies as spurious.
  for (const auto& pkt : trace.packets) {
    auto outcome = net::parse_packet(pkt);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(net::classify_spurious(*outcome.parsed), net::SpuriousCategory::None);
  }
}

TEST(Clean, CategoriesReported) {
  auto trace = make_trace(0.15);
  CleaningOptions opts;
  auto report = clean_trace(trace, opts);
  // Link-local dominates the injected mix.
  EXPECT_GT(report.removed_by_category[static_cast<std::size_t>(
                net::SpuriousCategory::LinkLocal)],
            0u);
  auto md = report.to_markdown();
  EXPECT_NE(md.find("link-local"), std::string::npos);
}

TEST(Clean, MinPacketSizeFilterIsDistortive) {
  auto trace = make_trace(0.0);
  std::size_t before = trace.size();
  CleaningOptions opts;
  opts.filter_extraneous = false;
  opts.min_packet_bytes = 80;  // ET-BERT's filter
  auto report = clean_trace(trace, opts);
  EXPECT_GT(report.removed_min_packet_size, 0u);
  EXPECT_EQ(trace.size(), before - report.removed_min_packet_size);
  // Everything surviving is >= 80 bytes; pure ACKs (64B frames) are gone —
  // which is exactly why the paper rejects this filter.
  for (const auto& pkt : trace.packets) EXPECT_GE(pkt.data.size(), 80u);
}

TEST(Clean, MinFlowPacketsFilter) {
  auto trace = make_trace(0.0);
  CleaningOptions opts;
  opts.filter_extraneous = false;
  opts.min_flow_packets = 10;
  clean_trace(trace, opts);
  std::map<int, std::size_t> flow_size;
  for (int f : trace.flow_of) ++flow_size[f];
  for (const auto& [f, n] : flow_size) EXPECT_GE(n, 10u);
}

TEST(Clean, MaxPacketsPerClassCap) {
  auto trace = make_trace(0.0);
  CleaningOptions opts;
  opts.filter_extraneous = false;
  opts.max_packets_per_class = 30;
  auto report = clean_trace(trace, opts);
  EXPECT_GT(report.removed_class_support, 0u);
  std::map<int, std::size_t> per_class;
  for (const auto& l : trace.labels) ++per_class[l.cls];
  for (const auto& [cls, n] : per_class) EXPECT_LE(n, 30u);
}

TEST(Clean, NoopWhenDisabled) {
  auto trace = make_trace(0.05);
  std::size_t before = trace.size();
  CleaningOptions opts;
  opts.filter_extraneous = false;
  auto report = clean_trace(trace, opts);
  EXPECT_EQ(trace.size(), before);
  EXPECT_EQ(report.removed_spurious_total(), 0u);
  EXPECT_EQ(report.removed_malformed, 0u);
}

TEST(Clean, MalformedFramesLandInTheCensus) {
  auto trace = make_trace(0.0);
  std::size_t before = trace.size();
  ASSERT_GE(before, 8u);
  // Maul a few frames: truncate inside the Ethernet header and inside IPv4.
  trace.packets[0].data.resize(6);   // TruncatedEthernet
  trace.packets[3].data.resize(11);  // TruncatedEthernet
  trace.packets[5].data.resize(18);  // TruncatedIpv4 (Ethernet survives)

  CleaningOptions opts;
  auto report = clean_trace(trace, opts);

  EXPECT_EQ(report.removed_malformed, 3u);
  EXPECT_EQ(report.malformed_by_error[static_cast<std::size_t>(
                net::ParseError::TruncatedEthernet)],
            2u);
  EXPECT_EQ(report.malformed_by_error[static_cast<std::size_t>(
                net::ParseError::TruncatedIpv4)],
            1u);
  // Damage is reported separately, never folded into a protocol category.
  EXPECT_EQ(report.removed_spurious_total(), 0u);
  EXPECT_EQ(trace.size(), before - 3);
  EXPECT_GT(report.malformed_fraction(), 0.0);
  auto md = report.to_markdown();
  EXPECT_NE(md.find("malformed"), std::string::npos);
  EXPECT_NE(md.find("truncated-ethernet"), std::string::npos);

  // Arrays stay parallel after compaction.
  EXPECT_EQ(trace.packets.size(), trace.labels.size());
  EXPECT_EQ(trace.packets.size(), trace.flow_of.size());
}

}  // namespace
}  // namespace sugar::dataset
