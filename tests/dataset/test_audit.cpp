#include <gtest/gtest.h>

#include "dataset/audit.h"
#include "dataset/transforms.h"

namespace sugar::dataset {
namespace {

PacketDataset make_ds() {
  trafficgen::GenOptions o;
  o.seed = 12;
  o.flows_per_class = 3;
  auto trace = trafficgen::generate_iscx_vpn(o);
  return make_task_dataset(trace, TaskId::VpnApp);
}

TEST(Audit, PerFlowSplitIsClean) {
  auto ds = make_ds();
  SplitOptions opts;
  opts.policy = SplitPolicy::PerFlow;
  auto split = split_dataset(ds, opts);
  auto report = audit_split(ds, split);
  EXPECT_EQ(report.straddling_flows, 0u);
  EXPECT_EQ(report.leaked_test_packets, 0u);
  EXPECT_EQ(report.implicit_id_matches, 0u);
  EXPECT_TRUE(report.clean());
  EXPECT_NE(report.to_string().find("[CLEAN]"), std::string::npos);
}

TEST(Audit, PerPacketSplitIsLeaky) {
  auto ds = make_ds();
  SplitOptions opts;
  opts.policy = SplitPolicy::PerPacket;
  auto split = split_dataset(ds, opts);
  auto report = audit_split(ds, split);
  EXPECT_GT(report.straddling_flows, 0u);
  EXPECT_GT(report.leaked_test_packets, report.total_test_packets / 2);
  // The implicit-id detector fires from wire bytes alone.
  EXPECT_GT(report.implicit_id_matches, 0u);
  EXPECT_FALSE(report.clean());
}

TEST(Audit, ImplicitDetectorSilencedByRandomization) {
  // Per-packet split + randomized SeqNo/AckNo: flows still straddle (explicit
  // leak) but the implicit-id surface is gone.
  auto ds = make_ds();
  apply_ablation(ds, AblationSpec::without_implicit_ids(), 31);
  SplitOptions opts;
  opts.policy = SplitPolicy::PerPacket;
  auto split = split_dataset(ds, opts);
  auto report = audit_split(ds, split);
  EXPECT_GT(report.straddling_flows, 0u);
  double rate = report.total_test_packets
                    ? static_cast<double>(report.implicit_id_matches) /
                          static_cast<double>(report.total_test_packets)
                    : 0.0;
  EXPECT_LT(rate, 0.05);
}

TEST(Audit, EmptySplitIsTriviallyClean) {
  auto ds = make_ds();
  SplitIndices empty;
  auto report = audit_split(ds, empty);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.total_flows, 0u);
}

}  // namespace
}  // namespace sugar::dataset
