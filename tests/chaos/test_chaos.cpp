// Chaos-engineering surface: deterministic injector streams, the ChaosIo
// disk-fault shim, strict env parsing for the chaos knobs, the circuit
// breaker's full state machine driven by a latency-scriptable classifier,
// and the watchdog escalation ladder (flag → quarantine → round abort →
// recovery). Built as its own binary (sugar_chaos_tests) under the `chaos`
// ctest label; the ChaosTsan.* subset also runs under the TSan
// configuration as chaos_tsan_smoke.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/chaos.h"
#include "core/io.h"
#include "core/threadpool.h"
#include "serve/breaker.h"
#include "serve/engine.h"
#include "trafficgen/datasets.h"

namespace sugar {
namespace {

using core::ChaosConfig;
using core::ChaosInjector;
using core::ChaosIo;
using core::ChaosSite;

class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) { core::set_global_threads(n); }
  ~ScopedThreads() { core::set_global_threads(0); }
};

/// Sets (or clears, when value is null) an env var for one test body.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) old_ = old;
    if (value)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (old_.has_value())
      ::setenv(name_, old_->c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  std::optional<std::string> old_;
};

std::vector<net::Packet> sample_stream() {
  trafficgen::GenOptions opts;
  opts.seed = 4242;
  opts.flows_per_class = 3;
  opts.spurious_fraction = 0.05;
  return trafficgen::generate_iscx_vpn(opts).packets;
}

std::shared_ptr<const serve::FlowClassifier> cheap_classifier() {
  serve::FlowFeatureConfig fcfg;
  const std::size_t dim = serve::flow_feature_dim(fcfg);
  return std::make_shared<serve::HeuristicClassifier>(
      dim, 4, [](const float*) { return 1; });
}

// ---------------------------------------------------------------------------
// ChaosInjector determinism.

TEST(ChaosInjector, SameSeedSameDecisions) {
  ChaosConfig cfg;
  cfg.enabled = true;
  cfg.seed = 1234;
  cfg.with(ChaosSite::kClassifierFault, 0.3).with(ChaosSite::kIoWriteFail, 0.7);
  ChaosInjector a(cfg), b(cfg);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.should_fire(ChaosSite::kClassifierFault),
              b.should_fire(ChaosSite::kClassifierFault));
    EXPECT_EQ(a.should_fire(ChaosSite::kIoWriteFail),
              b.should_fire(ChaosSite::kIoWriteFail));
  }
  EXPECT_EQ(a.fired(ChaosSite::kClassifierFault),
            b.fired(ChaosSite::kClassifierFault));
  EXPECT_GT(a.fired(ChaosSite::kClassifierFault), 0u);
  EXPECT_LT(a.fired(ChaosSite::kClassifierFault), 1000u);
}

TEST(ChaosInjector, SitesHaveIndependentStreams) {
  ChaosConfig cfg;
  cfg.enabled = true;
  cfg.seed = 77;
  cfg.with(ChaosSite::kShardStall, 0.5).with(ChaosSite::kFlowTableAlloc, 0.5);
  // Sequential per-site draws vs interleaved draws must decide identically:
  // each site owns its own (seed, site, n) stream.
  ChaosInjector seq(cfg), mix(cfg);
  std::vector<bool> seq_a, seq_b, mix_a, mix_b;
  for (int i = 0; i < 200; ++i) seq_a.push_back(seq.should_fire(ChaosSite::kShardStall));
  for (int i = 0; i < 200; ++i) seq_b.push_back(seq.should_fire(ChaosSite::kFlowTableAlloc));
  for (int i = 0; i < 200; ++i) {
    mix_a.push_back(mix.should_fire(ChaosSite::kShardStall));
    mix_b.push_back(mix.should_fire(ChaosSite::kFlowTableAlloc));
  }
  EXPECT_EQ(seq_a, mix_a);
  EXPECT_EQ(seq_b, mix_b);
}

TEST(ChaosInjector, ProbabilityEdges) {
  ChaosConfig cfg;
  cfg.enabled = true;
  cfg.seed = 9;
  cfg.with(ChaosSite::kIoRenameFail, 1.0);  // kShardStall stays at 0
  ChaosInjector inj(cfg);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(inj.should_fire(ChaosSite::kIoRenameFail));
    EXPECT_FALSE(inj.should_fire(ChaosSite::kShardStall));
  }
  ChaosConfig off = cfg;
  off.enabled = false;
  ChaosInjector disabled(off);
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(disabled.should_fire(ChaosSite::kIoRenameFail));
}

// ---------------------------------------------------------------------------
// ChaosIo disk faults.

TEST(ChaosIo, WriteFailLeavesNoFile) {
  ChaosConfig cfg;
  cfg.enabled = true;
  cfg.seed = 5;
  cfg.with(ChaosSite::kIoWriteFail, 1.0);
  ChaosInjector inj(cfg);
  ChaosIo io(inj);
  const std::string path = ::testing::TempDir() + "/chaos_write_fail.bin";
  core::real_io().remove_file(path);
  std::string err;
  EXPECT_FALSE(io.write_file(path, "payload", &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(std::ifstream(path).good());
}

TEST(ChaosIo, ShortWritePersistsStrictPrefix) {
  ChaosConfig cfg;
  cfg.enabled = true;
  cfg.seed = 5;
  cfg.with(ChaosSite::kIoShortWrite, 1.0);
  ChaosInjector inj(cfg);
  ChaosIo io(inj);
  const std::string path = ::testing::TempDir() + "/chaos_short_write.bin";
  std::string err;
  EXPECT_FALSE(io.write_file(path, "0123456789", &err));
  std::string got;
  ASSERT_TRUE(core::real_io().read_file(path, got, nullptr));
  EXPECT_LT(got.size(), 10u);  // a torn write, never the full payload
  EXPECT_EQ(got, std::string("0123456789").substr(0, got.size()));
  core::real_io().remove_file(path);
}

TEST(ChaosIo, RenameFailButReadsPassThrough) {
  ChaosConfig cfg;
  cfg.enabled = true;
  cfg.seed = 5;
  cfg.with(ChaosSite::kIoRenameFail, 1.0);
  ChaosInjector inj(cfg);
  ChaosIo io(inj);
  const std::string a = ::testing::TempDir() + "/chaos_rename_a.bin";
  const std::string b = ::testing::TempDir() + "/chaos_rename_b.bin";
  std::string err;
  ASSERT_TRUE(io.write_file(a, "content", &err));
  EXPECT_FALSE(io.rename_file(a, b, &err));
  std::string got;
  EXPECT_TRUE(io.read_file(a, got, nullptr));  // reads are never injected
  EXPECT_EQ(got, "content");
  core::real_io().remove_file(a);
  core::real_io().remove_file(b);
}

// ---------------------------------------------------------------------------
// Strict env parsing for the chaos knobs.

TEST(ChaosEnv, ValidSeedEnablesChaos) {
  ScopedEnv env("SUGAR_CHAOS", "12345");
  const ChaosConfig cfg = ChaosConfig::from_env();
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.seed, 12345u);
  // The smoke configuration must actually inject somewhere.
  double total = 0;
  for (double p : cfg.probability) total += p;
  EXPECT_GT(total, 0.0);
}

TEST(ChaosEnv, MalformedSeedRejected) {
  for (const char* bad : {"12abc", "abc", "", " 7", "7 ", "-3", "1e4"}) {
    ScopedEnv env("SUGAR_CHAOS", bad);
    EXPECT_FALSE(ChaosConfig::from_env().enabled) << "'" << bad << "'";
  }
  ScopedEnv env("SUGAR_CHAOS", "0");  // explicit zero means off
  EXPECT_FALSE(ChaosConfig::from_env().enabled);
  ScopedEnv none("SUGAR_CHAOS", nullptr);
  EXPECT_FALSE(ChaosConfig::from_env().enabled);
}

TEST(ChaosEnv, LatencyBudgetOverride) {
  {
    ScopedEnv env("SUGAR_LATENCY_BUDGET_US", "250");
    EXPECT_EQ(serve::BreakerConfig::from_env().latency_budget_us, 250u);
  }
  for (const char* bad : {"250us", "", "x", "-1", "2.5"}) {
    ScopedEnv env("SUGAR_LATENCY_BUDGET_US", bad);
    serve::BreakerConfig base;
    base.latency_budget_us = 42;
    EXPECT_EQ(serve::BreakerConfig::from_env(base).latency_budget_us, 42u)
        << "'" << bad << "'";
  }
}

// ---------------------------------------------------------------------------
// Circuit breaker state machine.

/// Primary whose latency is scripted through an atomic: slow mode busy-waits
/// past any reasonable budget, fast mode returns immediately.
class SlowableClassifier final : public serve::FlowClassifier {
 public:
  explicit SlowableClassifier(std::atomic<bool>* slow) : slow_(slow) {}
  [[nodiscard]] std::size_t feature_dim() const override { return 4; }
  [[nodiscard]] int num_classes() const override { return 2; }
  [[nodiscard]] int classify(const float*) const override {
    if (slow_->load(std::memory_order_relaxed))
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return 1;
  }

 private:
  std::atomic<bool>* slow_;
};

serve::BreakerConfig tight_breaker() {
  serve::BreakerConfig cfg;
  cfg.latency_budget_us = 200;
  cfg.failure_threshold = 2;
  cfg.open_cooldown_calls = 2;
  cfg.half_open_successes = 2;
  return cfg;
}

TEST(Breaker, QuietPrimaryIsPassThrough) {
  std::atomic<bool> slow{false};
  SlowableClassifier primary(&slow);
  serve::HeuristicClassifier fallback(4, 2, [](const float*) { return 0; });
  serve::CircuitBreakerClassifier breaker(primary, fallback, tight_breaker());
  const float f[4] = {0, 0, 0, 0};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(breaker.classify(f), 1);
  EXPECT_EQ(breaker.state(), serve::BreakerState::kClosed);
  EXPECT_EQ(breaker.counters().primary_calls, 50u);
  EXPECT_EQ(breaker.counters().fallback_calls, 0u);
  EXPECT_TRUE(breaker.transitions().empty());
}

TEST(Breaker, FullTripCooldownProbeRecoverCycle) {
  std::atomic<bool> slow{true};
  SlowableClassifier primary(&slow);
  serve::HeuristicClassifier fallback(4, 2, [](const float*) { return 0; });
  serve::CircuitBreakerClassifier breaker(primary, fallback, tight_breaker());
  const float f[4] = {0, 0, 0, 0};

  // Two consecutive latency faults trip the breaker. A budget breach still
  // returns the (slow but valid) primary verdict.
  EXPECT_EQ(breaker.classify(f), 1);
  EXPECT_EQ(breaker.state(), serve::BreakerState::kClosed);
  EXPECT_EQ(breaker.classify(f), 1);
  EXPECT_EQ(breaker.state(), serve::BreakerState::kOpen);
  EXPECT_EQ(breaker.counters().trips, 1u);
  EXPECT_EQ(breaker.counters().faults_latency, 2u);

  // While open every call is the fallback; the cooldown arms the probe.
  EXPECT_EQ(breaker.classify(f), 0);
  EXPECT_EQ(breaker.classify(f), 0);
  EXPECT_EQ(breaker.state(), serve::BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.counters().fallback_calls, 2u);

  // Probe while still slow: re-trip.
  EXPECT_EQ(breaker.classify(f), 1);  // probe answered, slowly
  EXPECT_EQ(breaker.state(), serve::BreakerState::kOpen);
  EXPECT_EQ(breaker.counters().probe_failures, 1u);
  EXPECT_EQ(breaker.counters().trips, 2u);

  // Primary recovers: cooldown, then two successful probes close it.
  slow.store(false);
  EXPECT_EQ(breaker.classify(f), 0);
  EXPECT_EQ(breaker.classify(f), 0);
  EXPECT_EQ(breaker.state(), serve::BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.classify(f), 1);
  EXPECT_EQ(breaker.classify(f), 1);
  EXPECT_EQ(breaker.state(), serve::BreakerState::kClosed);
  EXPECT_EQ(breaker.counters().recoveries, 1u);

  // The transition log is exactly the legal walk json_check asserts over.
  const auto log = breaker.transitions();
  using S = serve::BreakerState;
  const std::pair<S, S> want[] = {
      {S::kClosed, S::kOpen},    {S::kOpen, S::kHalfOpen},
      {S::kHalfOpen, S::kOpen},  {S::kOpen, S::kHalfOpen},
      {S::kHalfOpen, S::kClosed}};
  ASSERT_EQ(log.size(), std::size(want));
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].from, want[i].first) << "edge " << i;
    EXPECT_EQ(log[i].to, want[i].second) << "edge " << i;
    if (i > 0) EXPECT_LE(log[i - 1].at_call, log[i].at_call);
  }
}

TEST(Breaker, InjectedFaultRoutesToFallbackImmediately) {
  std::atomic<bool> slow{false};
  SlowableClassifier primary(&slow);
  serve::HeuristicClassifier fallback(4, 2, [](const float*) { return 0; });
  ChaosConfig cfg;
  cfg.enabled = true;
  cfg.seed = 3;
  cfg.with(ChaosSite::kClassifierFault, 1.0);
  ChaosInjector chaos(cfg);
  serve::BreakerConfig bcfg = tight_breaker();
  bcfg.failure_threshold = 1;
  serve::CircuitBreakerClassifier breaker(primary, fallback, bcfg, &chaos);
  const float f[4] = {0, 0, 0, 0};
  // The injected fault replaces the primary verdict with the fallback's and
  // a single fault trips at threshold 1.
  EXPECT_EQ(breaker.classify(f), 0);
  EXPECT_EQ(breaker.state(), serve::BreakerState::kOpen);
  EXPECT_EQ(breaker.counters().faults_injected, 1u);
  EXPECT_EQ(breaker.counters().primary_calls, 0u);
}

// ---------------------------------------------------------------------------
// Engine-level chaos: allocation faults and the watchdog escalation ladder.

TEST(EngineChaos, AllocFaultsBecomeCountedRejections) {
  const auto stream = sample_stream();
  ChaosConfig ccfg;
  ccfg.enabled = true;
  ccfg.seed = 11;
  ccfg.with(ChaosSite::kFlowTableAlloc, 1.0);
  ChaosInjector chaos(ccfg);
  serve::ServeConfig cfg;
  cfg.table.shards = 4;
  cfg.table.max_flows = 256;
  cfg.batch_size = 64;
  cfg.chaos = &chaos;
  serve::ServeEngine engine(cfg, cheap_classifier());
  for (std::size_t i = 0; i < 256 && i < stream.size(); ++i)
    engine.offer(stream[i]);
  engine.drain();
  const serve::ServeStats stats = engine.stats();
  EXPECT_EQ(stats.counters.flows_created, 0u);
  EXPECT_GT(stats.counters.flows_rejected_full, 0u);
  EXPECT_GT(chaos.fired(ChaosSite::kFlowTableAlloc), 0u);
}

TEST(EngineChaos, WatchdogEscalatesAndRecovers) {
  const auto stream = sample_stream();
  std::atomic<bool> stall_armed{true};
  serve::ServeConfig cfg;
  cfg.table.shards = 4;
  cfg.table.max_flows = 256;
  cfg.queue_capacity = 1024;
  cfg.batch_size = 96;
  cfg.record_verdicts = true;
  cfg.watchdog_timeout_s = 0.04;
  cfg.fallback = cheap_classifier();
  // One shard stalls through every escalation level on the first round.
  cfg.shard_hook = [&stall_armed](std::size_t shard) {
    if (shard != 0 || !stall_armed.exchange(false)) return;
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
    while (std::chrono::steady_clock::now() < until)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  };
  serve::ServeEngine engine(cfg, cheap_classifier());

  std::size_t pos = 0;
  for (std::size_t round = 0; round < 12 && pos < stream.size(); ++round) {
    for (std::size_t k = 0; k < 96 && pos < stream.size(); ++k, ++pos)
      engine.offer(stream[pos]);
    engine.pump();
  }
  engine.drain();
  engine.flush();

  const serve::ServeStats stats = engine.stats();
  EXPECT_GE(stats.counters.watchdog_stalls, 1u);
  EXPECT_GE(stats.counters.watchdog_quarantines, 1u);
  EXPECT_GE(stats.counters.watchdog_round_aborts, 1u);
  EXPECT_GE(stats.counters.packets_requeued, 1u);
  // Clean rounds after the stall must have lifted every quarantine.
  EXPECT_GE(stats.counters.watchdog_recoveries, 1u);
  for (std::size_t s = 0; s < cfg.table.shards; ++s)
    EXPECT_FALSE(engine.quarantined(s)) << "shard " << s;
  // Requeued packets were re-drained, not lost: the whole stream was
  // accounted as processed exactly once.
  EXPECT_EQ(stats.counters.packets_processed,
            stats.counters.packets_offered - stats.counters.packets_rejected);
}

// ---------------------------------------------------------------------------
// ChaosTsan: every chaos path exercised concurrently. Runs in plain builds
// and as the chaos_tsan_smoke ctest case under -DSUGAR_SANITIZE=thread.

TEST(ChaosTsan, StormSmoke) {
  ScopedThreads threads(7);
  const auto stream = sample_stream();
  ChaosConfig ccfg;
  ccfg.enabled = true;
  ccfg.seed = 31337;
  ccfg.stall_usec = 100;
  ccfg.classifier_delay_usec = 100;
  ccfg.with(ChaosSite::kShardStall, 0.02)
      .with(ChaosSite::kClassifierDelay, 0.05)
      .with(ChaosSite::kClassifierFault, 0.10)
      .with(ChaosSite::kFlowTableAlloc, 0.05)
      .with(ChaosSite::kIoWriteFail, 0.30)
      .with(ChaosSite::kIoShortWrite, 0.30)
      .with(ChaosSite::kIoRenameFail, 0.20);
  ChaosInjector chaos(ccfg);
  ChaosIo chaos_io(chaos);

  serve::FlowFeatureConfig fcfg;
  const std::size_t dim = serve::flow_feature_dim(fcfg);
  auto primary = cheap_classifier();
  auto fallback = std::make_shared<serve::HeuristicClassifier>(
      dim, 4, [](const float*) { return 0; });
  serve::BreakerConfig bcfg;
  bcfg.failure_threshold = 2;
  bcfg.open_cooldown_calls = 4;
  bcfg.half_open_successes = 2;
  auto breaker = std::make_shared<serve::CircuitBreakerClassifier>(
      *primary, *fallback, bcfg, &chaos);

  serve::ServeConfig cfg;
  cfg.table.shards = 4;
  cfg.table.max_flows = 256;
  cfg.queue_capacity = 512;
  cfg.batch_size = 64;
  cfg.record_verdicts = true;
  cfg.chaos = &chaos;
  cfg.fallback = fallback;
  serve::ServeEngine engine(cfg, breaker);

  const std::string path = ::testing::TempDir() + "/chaos_tsan.snap";
  std::size_t pos = 0;
  for (std::size_t round = 0; pos < stream.size() && round < 64; ++round) {
    for (std::size_t k = 0; k < 96 && pos < stream.size(); ++k, ++pos)
      engine.offer(stream[pos]);
    engine.pump();
    if (round % 8 == 7) engine.save_snapshot(path, &chaos_io);  // may fail: counted
  }
  engine.drain();
  engine.flush();

  // The storm must leave a coherent engine: a clean save to the real
  // filesystem restores into a fresh instance.
  ASSERT_TRUE(engine.save_snapshot(path).ok());
  serve::ServeEngine fresh(cfg, breaker);
  EXPECT_TRUE(fresh.restore_snapshot(path).ok());
  const auto a = engine.stats().counters.to_values();
  const auto b = fresh.stats().counters.to_values();
  EXPECT_EQ(a, b);
  core::real_io().remove_file(path);
}

}  // namespace
}  // namespace sugar
