#include <gtest/gtest.h>

#include "net/checksum.h"
#include "net/flow.h"
#include "net/parser.h"
#include "trafficgen/session.h"

namespace sugar::trafficgen {
namespace {

TcpSessionParams sample_params() {
  TcpSessionParams p;
  p.client.mac = *net::MacAddress::parse("02:00:00:00:00:01");
  p.client.ip = net::Ipv4Address::from_octets(192, 168, 0, 10);
  p.client.port = 50123;
  p.client.ts_base = 1000;
  p.server.mac = *net::MacAddress::parse("02:00:00:00:00:02");
  p.server.ip = net::Ipv4Address::from_octets(10, 1, 2, 3);
  p.server.port = 443;
  p.server.ts_base = 999999;
  p.start_usec = 1'000'000;
  p.mss = 100;  // force segmentation in tests
  p.ack_probability = 0.0;  // deterministic packet count
  return p;
}

TEST(TcpSession, HandshakeSemantics) {
  Rng rng(1);
  TcpSessionBuilder s(sample_params(), rng);
  s.handshake();
  auto pkts = s.take();
  ASSERT_EQ(pkts.size(), 3u);

  auto syn = *net::parse_packet(pkts[0]).parsed;
  auto synack = *net::parse_packet(pkts[1]).parsed;
  auto ack = *net::parse_packet(pkts[2]).parsed;

  EXPECT_TRUE(syn.tcp->syn);
  EXPECT_FALSE(syn.tcp->ack_flag);
  ASSERT_TRUE(syn.tcp->options.mss);
  EXPECT_EQ(*syn.tcp->options.mss, 100);

  EXPECT_TRUE(synack.tcp->syn);
  EXPECT_TRUE(synack.tcp->ack_flag);
  // SYN consumes one sequence number.
  EXPECT_EQ(synack.tcp->ack, syn.tcp->seq + 1);

  EXPECT_FALSE(ack.tcp->syn);
  EXPECT_TRUE(ack.tcp->ack_flag);
  EXPECT_EQ(ack.tcp->ack, synack.tcp->seq + 1);
  EXPECT_EQ(ack.tcp->seq, syn.tcp->seq + 1);

  // Timestamps come from the per-endpoint clocks.
  ASSERT_TRUE(syn.tcp->options.timestamp);
  EXPECT_GE(syn.tcp->options.timestamp->first, 1000u);
  EXPECT_LT(syn.tcp->options.timestamp->first, 999999u);
}

TEST(TcpSession, SequenceNumbersAdvanceByPayload) {
  Rng rng(2);
  TcpSessionBuilder s(sample_params(), rng);
  s.handshake();
  s.send(true, std::vector<std::uint8_t>(250, 0x41));  // 3 segments at MSS 100
  auto pkts = s.take();
  ASSERT_EQ(pkts.size(), 6u);  // 3 handshake + 3 data

  auto d0 = *net::parse_packet(pkts[3]).parsed;
  auto d1 = *net::parse_packet(pkts[4]).parsed;
  auto d2 = *net::parse_packet(pkts[5]).parsed;
  EXPECT_EQ(d0.payload_len, 100u);
  EXPECT_EQ(d1.payload_len, 100u);
  EXPECT_EQ(d2.payload_len, 50u);
  EXPECT_EQ(d1.tcp->seq, d0.tcp->seq + 100);
  EXPECT_EQ(d2.tcp->seq, d0.tcp->seq + 200);
  EXPECT_TRUE(d2.tcp->psh);
  EXPECT_FALSE(d0.tcp->psh);
}

TEST(TcpSession, AllPacketsChecksumClean) {
  Rng rng(3);
  TcpSessionParams params = sample_params();
  params.ack_probability = 0.7;
  TcpSessionBuilder s(params, rng);
  s.handshake();
  s.send(true, rng.bytes(300));
  s.send(false, rng.bytes(777));
  s.finish();
  for (const auto& pkt : s.packets()) {
    auto outcome = net::parse_packet(pkt);
    ASSERT_TRUE(outcome.ok());
    const auto& p = *outcome.parsed;
    auto hdr = std::span{pkt.data}.subspan(p.l3_offset, p.ipv4->header_len());
    EXPECT_EQ(net::checksum(hdr), 0);
    auto seg = std::span{pkt.data}.subspan(p.l4_offset);
    EXPECT_EQ(net::l4_checksum_v4(p.ipv4->src, p.ipv4->dst, 6, seg), 0);
  }
}

TEST(TcpSession, OneFlowOneKey) {
  Rng rng(4);
  TcpSessionBuilder s(sample_params(), rng);
  s.handshake();
  s.send(true, rng.bytes(120));
  s.send(false, rng.bytes(450));
  s.finish();
  auto pkts = s.take();
  auto table = net::assemble_flows(pkts);
  EXPECT_EQ(table.flows().size(), 1u);
  EXPECT_EQ(table.flows()[0].size(), pkts.size());
}

TEST(TcpSession, TimestampsMonotonePerEndpoint) {
  Rng rng(5);
  TcpSessionBuilder s(sample_params(), rng);
  s.handshake();
  for (int i = 0; i < 5; ++i) {
    s.send(true, rng.bytes(50));
    s.wait_usec(10'000);
  }
  std::uint32_t last_client_tsval = 0;
  std::uint64_t last_ts = 0;
  for (const auto& pkt : s.packets()) {
    EXPECT_GE(pkt.ts_usec, last_ts);
    last_ts = pkt.ts_usec;
    auto p = *net::parse_packet(pkt).parsed;
    if (p.ipv4->src == net::Ipv4Address::from_octets(192, 168, 0, 10)) {
      ASSERT_TRUE(p.tcp->options.timestamp);
      EXPECT_GE(p.tcp->options.timestamp->first, last_client_tsval);
      last_client_tsval = p.tcp->options.timestamp->first;
    }
  }
}

TEST(TcpSession, IpIdIncrementsPerHost) {
  Rng rng(6);
  TcpSessionBuilder s(sample_params(), rng);
  s.handshake();
  s.send(true, rng.bytes(10));
  s.send(true, rng.bytes(10));
  auto pkts = s.take();
  std::vector<std::uint16_t> client_ids;
  for (const auto& pkt : pkts) {
    auto p = *net::parse_packet(pkt).parsed;
    if (p.ipv4->src == net::Ipv4Address::from_octets(192, 168, 0, 10))
      client_ids.push_back(p.ipv4->identification);
  }
  ASSERT_GE(client_ids.size(), 3u);
  for (std::size_t i = 1; i < client_ids.size(); ++i)
    EXPECT_EQ(client_ids[i], static_cast<std::uint16_t>(client_ids[i - 1] + 1));
}

TEST(TcpSession, DistinctFlowsHaveDistinctImplicitIds) {
  // Two sessions with identical endpoints but separate RNG streams must get
  // different ISNs and timestamp bases — the property the whole paper
  // hinges on.
  Rng rng1(7), rng2(8);
  TcpSessionParams params = sample_params();
  params.client.ts_base = 111;
  TcpSessionBuilder s1(params, rng1);
  params.client.ts_base = 999;
  TcpSessionBuilder s2(params, rng2);
  s1.handshake();
  s2.handshake();
  auto p1 = *net::parse_packet(s1.packets()[0]).parsed;
  auto p2 = *net::parse_packet(s2.packets()[0]).parsed;
  EXPECT_NE(p1.tcp->seq, p2.tcp->seq);
  EXPECT_NE(p1.tcp->options.timestamp->first, p2.tcp->options.timestamp->first);
}

TEST(UdpSession, DatagramsAndIds) {
  Rng rng(9);
  UdpSessionParams params;
  params.client.ip = net::Ipv4Address::from_octets(192, 168, 1, 1);
  params.client.port = 40000;
  params.server.ip = net::Ipv4Address::from_octets(8, 8, 4, 4);
  params.server.port = 1194;
  UdpSessionBuilder s(params, rng);
  s.send(true, rng.bytes(100));
  s.send(false, rng.bytes(200));
  s.send(true, rng.bytes(50));
  auto pkts = s.take();
  ASSERT_EQ(pkts.size(), 3u);
  auto p0 = *net::parse_packet(pkts[0]).parsed;
  auto p2 = *net::parse_packet(pkts[2]).parsed;
  EXPECT_EQ(p0.udp->dst_port, 1194);
  EXPECT_EQ(p2.ipv4->identification,
            static_cast<std::uint16_t>(p0.ipv4->identification + 1));
  auto table = net::assemble_flows(pkts);
  EXPECT_EQ(table.flows().size(), 1u);
}

TEST(TcpSession, RstAbort) {
  Rng rng(10);
  TcpSessionBuilder s(sample_params(), rng);
  s.handshake();
  s.abort(true);
  auto pkts = s.take();
  auto p = *net::parse_packet(pkts.back()).parsed;
  EXPECT_TRUE(p.tcp->rst);
}

}  // namespace
}  // namespace sugar::trafficgen
