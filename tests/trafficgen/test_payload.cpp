#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "trafficgen/payload.h"

namespace sugar::trafficgen {
namespace {

TEST(Payload, EncryptedIsRequestedLength) {
  Rng rng(1);
  EXPECT_EQ(encrypted_payload(rng, 0).size(), 0u);
  EXPECT_EQ(encrypted_payload(rng, 1500).size(), 1500u);
}

TEST(Payload, EncryptedLooksUniform) {
  // Byte histogram of 64 KiB of "ciphertext" should be near-uniform — the
  // property that guarantees zero class signal in the payload.
  Rng rng(2);
  auto data = encrypted_payload(rng, 65536);
  std::array<int, 256> hist{};
  for (auto b : data) ++hist[b];
  double expected = 65536.0 / 256.0;
  double chi2 = 0;
  for (int h : hist) {
    double d = h - expected;
    chi2 += d * d / expected;
  }
  // 255 dof; far tail bound. Uniform data lands near 255.
  EXPECT_LT(chi2, 360.0);
}

TEST(Payload, TlsRecordFraming) {
  Rng rng(3);
  auto data = tls_record_payload(rng, 1000);
  ASSERT_GE(data.size(), 5u);
  EXPECT_EQ(data[0], 0x17);  // application data
  EXPECT_EQ(data[1], 0x03);
  EXPECT_EQ(data[2], 0x03);
  std::size_t rec_len = static_cast<std::size_t>(data[3]) << 8 | data[4];
  EXPECT_EQ(rec_len, 1000u);
  EXPECT_EQ(data.size(), 1005u);
}

TEST(Payload, TlsRecordSplitsAtLimit) {
  Rng rng(4);
  auto data = tls_record_payload(rng, 20000);  // > 16384: two records
  EXPECT_EQ(data.size(), 20000u + 2 * 5);
  std::size_t first = static_cast<std::size_t>(data[3]) << 8 | data[4];
  EXPECT_EQ(first, 16384u);
  std::size_t second_hdr = 5 + first;
  EXPECT_EQ(data[second_hdr], 0x17);
}

TEST(Payload, ClientHelloCarriesSni) {
  Rng rng(5);
  auto hello = tls_client_hello(rng, "site42.example.org");
  EXPECT_EQ(hello[0], 0x16);  // handshake record
  EXPECT_EQ(hello[5], 0x01);  // client hello
  std::string blob(hello.begin(), hello.end());
  EXPECT_NE(blob.find("site42.example.org"), std::string::npos);

  auto no_sni = tls_client_hello(rng, "");
  std::string blob2(no_sni.begin(), no_sni.end());
  EXPECT_EQ(blob2.find("example"), std::string::npos);
  EXPECT_LT(no_sni.size(), hello.size());
}

TEST(Payload, ServerHelloShape) {
  Rng rng(6);
  auto hello = tls_server_hello(rng);
  EXPECT_EQ(hello[0], 0x16);
  EXPECT_EQ(hello[5], 0x02);  // server hello
  std::size_t rec_len = static_cast<std::size_t>(hello[3]) << 8 | hello[4];
  EXPECT_EQ(hello.size(), rec_len + 5);
}

TEST(Payload, HttpPlaintextStructure) {
  Rng rng(7);
  auto req = http_request_payload(rng, "host.test", 0);
  std::string s(req.begin(), req.end());
  EXPECT_EQ(s.rfind("GET ", 0), 0u);
  EXPECT_NE(s.find("Host: host.test\r\n"), std::string::npos);
  EXPECT_EQ(s.substr(s.size() - 4), "\r\n\r\n");

  auto post = http_request_payload(rng, "host.test", 100);
  std::string sp(post.begin(), post.end());
  EXPECT_EQ(sp.rfind("POST ", 0), 0u);
  EXPECT_NE(sp.find("Content-Length: 100"), std::string::npos);

  auto resp = http_response_payload(rng, 50);
  std::string sr(resp.begin(), resp.end());
  EXPECT_EQ(sr.rfind("HTTP/1.1 200 OK", 0), 0u);
  // Response body is printable ASCII (compressible plaintext, not
  // ciphertext).
  auto body_at = sr.find("\r\n\r\n") + 4;
  for (std::size_t i = body_at; i < sr.size(); ++i)
    EXPECT_TRUE(sr[i] >= ' ' && sr[i] <= '~');
}

TEST(Payload, OpenVpnSessionIdStable) {
  Rng rng(8);
  auto p1 = openvpn_payload(rng, 0x1122334455667788ull, 100);
  auto p2 = openvpn_payload(rng, 0x1122334455667788ull, 200);
  EXPECT_EQ(p1[0], 0x30);
  // Same session id prefix across packets of a session.
  EXPECT_TRUE(std::equal(p1.begin() + 1, p1.begin() + 9, p2.begin() + 1));
  EXPECT_EQ(p1.size(), 109u);
}

TEST(Payload, C2BeaconMagic) {
  Rng rng(9);
  auto b = c2_beacon_payload(rng, 0xDEADBEEF, 64);
  EXPECT_EQ(b[0], 0xDE);
  EXPECT_EQ(b[1], 0xAD);
  EXPECT_EQ(b[2], 0xBE);
  EXPECT_EQ(b[3], 0xEF);
  EXPECT_EQ(b.size(), 64u);
}

TEST(Payload, DnsQueryEncoding) {
  Rng rng(10);
  auto q = dns_query_payload(rng, "host.local");
  // Flags = standard query w/ RD, QDCOUNT 1.
  EXPECT_EQ(q[2], 0x01);
  EXPECT_EQ(q[3], 0x00);
  EXPECT_EQ(q[5], 1);
  // QNAME label encoding: 4 "host" 5 "local" 0.
  EXPECT_EQ(q[12], 4);
  EXPECT_EQ(std::string(q.begin() + 13, q.begin() + 17), "host");
  EXPECT_EQ(q[17], 5);
  EXPECT_EQ(q[23], 0);
}

}  // namespace
}  // namespace sugar::trafficgen
