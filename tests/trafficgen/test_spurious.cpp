#include <gtest/gtest.h>

#include "net/parser.h"
#include "trafficgen/spurious.h"

namespace sugar::trafficgen {
namespace {

using net::SpuriousCategory;

/// Every generated spurious packet must be classified back into its own
/// category by the cleaning taxonomy — generator and filter must agree.
class SpuriousRoundTrip : public ::testing::TestWithParam<SpuriousCategory> {};

TEST_P(SpuriousRoundTrip, ClassifierAgreesWithGenerator) {
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    auto pkt = make_spurious_packet(GetParam(), rng, 1000);
    auto outcome = net::parse_packet(pkt);
    SpuriousCategory got = SpuriousCategory::LinkManagement;
    if (outcome.ok()) got = net::classify_spurious(*outcome.parsed);
    EXPECT_EQ(got, GetParam()) << "iteration " << i;
    EXPECT_NE(got, SpuriousCategory::None)
        << "spurious packets must never look task-relevant";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCategories, SpuriousRoundTrip,
    ::testing::Values(SpuriousCategory::LinkLocal, SpuriousCategory::NetworkManagement,
                      SpuriousCategory::Nat, SpuriousCategory::RouteManagement,
                      SpuriousCategory::ServiceManagement, SpuriousCategory::RealTime,
                      SpuriousCategory::NetworkTime, SpuriousCategory::LinkManagement,
                      SpuriousCategory::RemoteAccess, SpuriousCategory::IotManagement,
                      SpuriousCategory::Quake, SpuriousCategory::Others),
    [](const auto& info) {
      std::string name = net::to_string(info.param);
      for (auto& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

TEST(Spurious, WeightedMixDominatedByLinkLocal) {
  Rng rng(5);
  std::array<int, static_cast<std::size_t>(SpuriousCategory::kCount)> hist{};
  for (int i = 0; i < 2000; ++i)
    ++hist[static_cast<std::size_t>(random_spurious_category(rng))];
  EXPECT_EQ(hist[static_cast<std::size_t>(SpuriousCategory::None)], 0);
  EXPECT_GT(hist[static_cast<std::size_t>(SpuriousCategory::LinkLocal)],
            hist[static_cast<std::size_t>(SpuriousCategory::Nat)]);
  EXPECT_GT(hist[static_cast<std::size_t>(SpuriousCategory::NetworkManagement)],
            hist[static_cast<std::size_t>(SpuriousCategory::NetworkTime)]);
}

TEST(Spurious, InjectionPreservesOrderAndCount) {
  Rng gen_rng(6);
  std::vector<net::Packet> trace;
  for (int i = 0; i < 100; ++i) {
    net::Packet p;
    p.ts_usec = static_cast<std::uint64_t>(i) * 1000;
    p.data.assign(60, 0);
    trace.push_back(std::move(p));
  }
  Rng rng(7);
  auto inserted = inject_spurious(trace, 0.20, rng);
  EXPECT_NEAR(static_cast<double>(inserted.size()), 25.0, 8.0);
  EXPECT_EQ(trace.size(), 100 + inserted.size());
}

}  // namespace
}  // namespace sugar::trafficgen
