#include <gtest/gtest.h>

#include <set>

#include "net/flow.h"
#include "net/parser.h"
#include "trafficgen/datasets.h"

namespace sugar::trafficgen {
namespace {

GenOptions small_opts(std::uint64_t seed = 11) {
  GenOptions o;
  o.seed = seed;
  o.flows_per_class = 2;
  return o;
}

TEST(Datasets, IscxLabelsConsistentPerFlow) {
  auto trace = generate_iscx_vpn(small_opts());
  ASSERT_GT(trace.size(), 100u);
  ASSERT_EQ(trace.packets.size(), trace.labels.size());
  ASSERT_EQ(trace.packets.size(), trace.flow_of.size());

  // All packets of one generator flow share the same labels.
  std::map<int, PacketLabel> label_of_flow;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    int f = trace.flow_of[i];
    if (f < 0) continue;
    auto [it, inserted] = label_of_flow.emplace(f, trace.labels[i]);
    if (!inserted) {
      EXPECT_EQ(it->second.cls, trace.labels[i].cls);
      EXPECT_EQ(it->second.service, trace.labels[i].service);
      EXPECT_EQ(it->second.binary, trace.labels[i].binary);
    }
  }
  // 16 app classes, 6 services, both VPN variants present.
  std::set<int> apps, services, binaries;
  for (const auto& l : trace.labels) {
    if (l.cls >= 0) apps.insert(l.cls);
    if (l.service >= 0) services.insert(l.service);
    if (l.binary >= 0) binaries.insert(l.binary);
  }
  EXPECT_EQ(apps.size(), 16u);
  EXPECT_EQ(services.size(), 6u);
  EXPECT_EQ(binaries, (std::set<int>{0, 1}));
  EXPECT_EQ(trace.class_names.size(), 16u);
  EXPECT_EQ(trace.service_names.size(), 6u);
}

TEST(Datasets, TraceIsTimeOrdered) {
  auto trace = generate_ustc_tfc(small_opts());
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_LE(trace.packets[i - 1].ts_usec, trace.packets[i].ts_usec);
}

TEST(Datasets, DeterministicAcrossRuns) {
  auto a = generate_cstn_tls120(small_opts(77));
  auto b = generate_cstn_tls120(small_opts(77));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.packets[i].data, b.packets[i].data);
    EXPECT_EQ(a.packets[i].ts_usec, b.packets[i].ts_usec);
  }
  auto c = generate_cstn_tls120(small_opts(78));
  bool identical = a.size() == c.size();
  if (identical)
    for (std::size_t i = 0; i < a.size(); ++i)
      if (a.packets[i].data != c.packets[i].data) {
        identical = false;
        break;
      }
  EXPECT_FALSE(identical) << "different seeds must differ";
}

TEST(Datasets, SpuriousFractionRoughlyRespected) {
  GenOptions o = small_opts();
  o.flows_per_class = 3;
  o.spurious_fraction = 0.10;
  auto trace = generate_ustc_tfc(o);
  double frac = static_cast<double>(trace.num_spurious()) /
                static_cast<double>(trace.size());
  EXPECT_NEAR(frac, 0.10, 0.03);
  // Spurious packets carry no labels.
  for (std::size_t i = 0; i < trace.size(); ++i)
    if (trace.flow_of[i] < 0) {
      EXPECT_EQ(trace.labels[i].cls, -1);
      EXPECT_EQ(trace.labels[i].binary, -1);
    }
}

TEST(Datasets, CstnStripsHandshakeAndHello) {
  GenOptions with = small_opts();
  with.strip_tls_handshake = true;
  auto stripped = generate_cstn_tls120(with);

  // No SYN packets and no TLS ClientHello (0x16 handshake type 0x01 in
  // the first payload bytes) must survive.
  int syn_count = 0, hello_count = 0;
  for (const auto& pkt : stripped.packets) {
    auto outcome = net::parse_packet(pkt);
    if (!outcome.ok() || !outcome.parsed->tcp) continue;
    if (outcome.parsed->tcp->syn) ++syn_count;
    auto payload = outcome.parsed->payload_view(pkt);
    if (payload.size() > 5 && payload[0] == 0x16 && payload[5] == 0x01) ++hello_count;
  }
  EXPECT_EQ(syn_count, 0);
  EXPECT_EQ(hello_count, 0);

  GenOptions without = small_opts();
  without.strip_tls_handshake = false;
  auto full = generate_cstn_tls120(without);
  int syn_full = 0;
  for (const auto& pkt : full.packets) {
    auto outcome = net::parse_packet(pkt);
    if (outcome.ok() && outcome.parsed->tcp && outcome.parsed->tcp->syn) ++syn_full;
  }
  EXPECT_GT(syn_full, 0);
}

TEST(Datasets, Tls120Has120Classes) {
  auto trace = generate_cstn_tls120(small_opts());
  std::set<int> classes;
  for (const auto& l : trace.labels) classes.insert(l.cls);
  EXPECT_EQ(classes.size(), 120u);
  EXPECT_EQ(trace.class_names.size(), 120u);
  // TLS-120 has no service/binary tasks.
  for (const auto& l : trace.labels) {
    EXPECT_EQ(l.service, -1);
    EXPECT_EQ(l.binary, -1);
  }
}

TEST(Datasets, GeneratorFlowsMatchWireFlows) {
  // The generator's flow ids must agree with flows re-derived from the
  // wire bytes via FlowTable (cross-check of the whole stack).
  auto trace = generate_cstn_tls120(small_opts());
  net::FlowTable table;
  for (std::size_t i = 0; i < trace.size(); ++i) table.add(i, trace.packets[i]);
  std::map<int, std::set<int>> wire_to_gen;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    int wire = table.flow_of_packet()[i];
    if (wire >= 0) wire_to_gen[wire].insert(trace.flow_of[i]);
  }
  for (const auto& [wire, gens] : wire_to_gen)
    EXPECT_EQ(gens.size(), 1u) << "wire flow " << wire
                               << " spans multiple generator flows";
}

TEST(Datasets, BackboneIsUnlabeledAndDiverse) {
  auto trace = generate_backbone(3, 40);
  EXPECT_GT(trace.size(), 200u);
  for (const auto& l : trace.labels) EXPECT_EQ(l.cls, -1);
  // Contains both TCP and UDP.
  bool tcp = false, udp = false;
  for (const auto& pkt : trace.packets) {
    auto outcome = net::parse_packet(pkt);
    if (!outcome.ok()) continue;
    tcp = tcp || outcome.parsed->tcp.has_value();
    udp = udp || outcome.parsed->udp.has_value();
  }
  EXPECT_TRUE(tcp);
  EXPECT_TRUE(udp);
}

TEST(Datasets, VpnFlowsGoToGateway) {
  GenOptions o = small_opts();
  o.flows_per_class = 4;
  o.vpn_fraction = 1.0;
  auto trace = generate_iscx_vpn(o);
  // Every labelled packet is VPN; server endpoint is a gateway 131.202.240.x
  // over UDP 1194.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace.labels[i].cls < 0) continue;
    EXPECT_EQ(trace.labels[i].binary, 1);
    auto p = *net::parse_packet(trace.packets[i]).parsed;
    ASSERT_TRUE(p.udp.has_value());
    bool to_gw = p.ipv4->dst.in_subnet(net::Ipv4Address::from_octets(131, 202, 240, 0), 24);
    bool from_gw = p.ipv4->src.in_subnet(net::Ipv4Address::from_octets(131, 202, 240, 0), 24);
    EXPECT_TRUE(to_gw || from_gw);
  }
}

}  // namespace
}  // namespace sugar::trafficgen
