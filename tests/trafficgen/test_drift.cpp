// Property tests for the scenario-diversity variant layer: the default
// variant is a byte-level identity, non-default generation is
// bit-reproducible regardless of the compute-pool width, drift moves the
// header statistics monotonically in the configured direction, the
// imbalance knob hits its per-class counts exactly, and the QUIC/DoH
// reshapes produce parseable frames of the advertised shape.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/threadpool.h"
#include "net/parser.h"
#include "trafficgen/datasets.h"
#include "trafficgen/variant.h"

namespace sugar::trafficgen {
namespace {

GenOptions small_opts(std::uint64_t seed = 11) {
  GenOptions o;
  o.seed = seed;
  o.flows_per_class = 2;
  return o;
}

/// FNV-1a over every packet's bytes and timestamp — a cheap whole-trace
/// digest for bit-identity assertions.
std::uint64_t trace_digest(const GeneratedTrace& t) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    mix(t.packets[i].ts_usec);
    for (std::uint8_t b : t.packets[i].data) {
      h ^= b;
      h *= 1099511628211ull;
    }
    mix(static_cast<std::uint64_t>(t.flow_of[i] + 1));
  }
  return h;
}

struct HeaderStats {
  double mean_ttl = 0;
  double mean_window = 0;
  double mean_flow_duration_us = 0;
};

HeaderStats observe(const GeneratedTrace& t) {
  HeaderStats s;
  std::size_t n_ip = 0, n_tcp = 0;
  std::map<int, std::pair<std::uint64_t, std::uint64_t>> flow_span;
  for (std::size_t i = 0; i < t.size(); ++i) {
    auto outcome = net::parse_packet(t.packets[i]);
    if (!outcome.ok()) continue;
    if (outcome.parsed->ipv4) {
      s.mean_ttl += outcome.parsed->ipv4->ttl;
      ++n_ip;
    }
    if (outcome.parsed->tcp) {
      s.mean_window += outcome.parsed->tcp->window;
      ++n_tcp;
    }
    if (t.flow_of[i] >= 0) {
      auto [it, inserted] = flow_span.emplace(
          t.flow_of[i], std::make_pair(t.packets[i].ts_usec, t.packets[i].ts_usec));
      if (!inserted) {
        it->second.first = std::min(it->second.first, t.packets[i].ts_usec);
        it->second.second = std::max(it->second.second, t.packets[i].ts_usec);
      }
    }
  }
  if (n_ip) s.mean_ttl /= static_cast<double>(n_ip);
  if (n_tcp) s.mean_window /= static_cast<double>(n_tcp);
  for (const auto& [flow, span] : flow_span)
    s.mean_flow_duration_us += static_cast<double>(span.second - span.first);
  if (!flow_span.empty())
    s.mean_flow_duration_us /= static_cast<double>(flow_span.size());
  return s;
}

TEST(Drift, DefaultVariantIsByteIdentity) {
  GenOptions plain = small_opts(23);
  GenOptions with_variant = small_opts(23);
  with_variant.variant = TraceVariant{};  // explicit identity
  EXPECT_TRUE(with_variant.variant.is_default());
  EXPECT_EQ(with_variant.variant.tag(), "default");

  auto a = generate_iscx_vpn(plain);
  auto b = generate_iscx_vpn(with_variant);
  EXPECT_EQ(trace_digest(a), trace_digest(b));
}

TEST(Drift, DigestStableAcrossPoolWidths) {
  TraceVariant v;
  v.drift_epoch = 2;
  v.quic_fraction = 0.25;
  GenOptions o = small_opts(31);
  o.variant = v;

  const std::size_t restore = core::threads_from_env();
  std::set<std::uint64_t> iscx, ustc;
  for (std::size_t threads : {1u, 2u, 7u}) {
    core::set_global_threads(threads);
    iscx.insert(trace_digest(generate_iscx_vpn(o)));
    ustc.insert(trace_digest(generate_ustc_tfc(o)));
  }
  core::set_global_threads(restore);
  EXPECT_EQ(iscx.size(), 1u) << "iscx digest varies with pool width";
  EXPECT_EQ(ustc.size(), 1u) << "ustc digest varies with pool width";
}

TEST(Drift, DifferentSeedsAndEpochsDiffer) {
  TraceVariant v;
  v.drift_epoch = 1;
  GenOptions a = small_opts(41);
  a.variant = v;
  GenOptions b = small_opts(42);
  b.variant = v;
  EXPECT_NE(trace_digest(generate_ustc_tfc(a)), trace_digest(generate_ustc_tfc(b)));

  GenOptions c = small_opts(41);
  c.variant = v;
  c.variant.drift_epoch = 2;
  EXPECT_NE(trace_digest(generate_ustc_tfc(a)), trace_digest(generate_ustc_tfc(c)));
}

TEST(Drift, HeaderStatsShiftMonotonically) {
  // The default DriftSpec decays TTL, grows the TCP window and stretches
  // inter-arrival gaps per epoch; observed per-trace means must follow.
  GenOptions o = small_opts(7);
  o.flows_per_class = 3;
  std::vector<HeaderStats> stats;
  for (int epoch : {0, 2, 4}) {
    GenOptions e = o;
    e.variant.drift_epoch = epoch;
    stats.push_back(observe(generate_ustc_tfc(e)));
  }
  for (std::size_t i = 1; i < stats.size(); ++i) {
    EXPECT_LT(stats[i].mean_ttl, stats[i - 1].mean_ttl)
        << "TTL mean did not decay at step " << i;
    EXPECT_GT(stats[i].mean_window, stats[i - 1].mean_window)
        << "window mean did not grow at step " << i;
    EXPECT_GT(stats[i].mean_flow_duration_us, stats[i - 1].mean_flow_duration_us)
        << "flow duration did not stretch at step " << i;
  }
}

TEST(Drift, ImbalanceCountsAreExact) {
  EXPECT_EQ(variant_class_flows(40, 0, 1.0), 40u);
  EXPECT_EQ(variant_class_flows(40, 3, 1.0), 40u);
  EXPECT_EQ(variant_class_flows(40, 0, 0.7), 40u);
  EXPECT_EQ(variant_class_flows(40, 1, 0.7), 28u);
  EXPECT_EQ(variant_class_flows(40, 2, 0.7), 20u);  // llround(19.6)
  EXPECT_EQ(variant_class_flows(40, 10, 0.1), 1u);  // floor at one flow

  // The generator must hit those counts exactly: distinct flow ids per
  // class equal variant_class_flows(base, class, gamma).
  GenOptions o = small_opts(13);
  o.flows_per_class = 4;
  o.variant.imbalance_gamma = 0.6;
  auto trace = generate_ustc_tfc(o);
  std::map<int, std::set<int>> flows_of_class;
  for (std::size_t i = 0; i < trace.size(); ++i)
    if (trace.flow_of[i] >= 0 && trace.labels[i].cls >= 0)
      flows_of_class[trace.labels[i].cls].insert(trace.flow_of[i]);
  ASSERT_FALSE(flows_of_class.empty());
  for (const auto& [cls, flows] : flows_of_class)
    EXPECT_EQ(flows.size(), variant_class_flows(4, cls, 0.6))
        << "class " << cls << " flow count off";
  // Head class strictly larger than the tail.
  EXPECT_GT(flows_of_class.begin()->second.size(),
            flows_of_class.rbegin()->second.size());
}

TEST(Drift, FamilyChangesStackFingerprint) {
  GenOptions a = small_opts(19);
  GenOptions b = small_opts(19);
  b.variant.family = 1;
  auto fam_a = generate_ustc_tfc(a);
  auto fam_b = generate_ustc_tfc(b);
  EXPECT_NE(trace_digest(fam_a), trace_digest(fam_b));

  // Same label space: the families re-parameterize the stack, not the task.
  auto classes = [](const GeneratedTrace& t) {
    std::set<int> cls;
    for (const auto& l : t.labels)
      if (l.cls >= 0) cls.insert(l.cls);
    return cls;
  };
  EXPECT_EQ(classes(fam_a), classes(fam_b));

  // Family B swaps the canonical 64-TTL server stacks to 255, so the
  // observed TTL distribution must move.
  auto sa = observe(fam_a);
  auto sb = observe(fam_b);
  EXPECT_NE(sa.mean_ttl, sb.mean_ttl);
}

TEST(Drift, QuicReshapeEmitsUdp443) {
  GenOptions o = small_opts(29);
  o.variant.quic_fraction = 1.0;
  auto trace = generate_ustc_tfc(o);
  std::size_t labeled = 0, udp443 = 0, quic_bit = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace.flow_of[i] < 0) continue;
    ++labeled;
    auto outcome = net::parse_packet(trace.packets[i]);
    ASSERT_TRUE(outcome.ok());
    if (!outcome.parsed->udp) continue;
    if (outcome.parsed->udp->src_port == 443 || outcome.parsed->udp->dst_port == 443)
      ++udp443;
    auto payload = outcome.parsed->payload_view(trace.packets[i]);
    // QUIC header form bit (0x40) is set in both long and short headers.
    if (!payload.empty() && (payload[0] & 0x40)) ++quic_bit;
  }
  ASSERT_GT(labeled, 0u);
  EXPECT_GT(udp443, labeled / 2) << "QUIC reshape should dominate the trace";
  EXPECT_GT(quic_bit, 0u);
}

TEST(Drift, DohReshapeEmitsTls443Records) {
  GenOptions o = small_opts(37);
  o.variant.doh_fraction = 1.0;
  auto trace = generate_iscx_vpn(o);
  std::size_t tcp443 = 0, app_records = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace.flow_of[i] < 0) continue;
    auto outcome = net::parse_packet(trace.packets[i]);
    ASSERT_TRUE(outcome.ok());
    if (!outcome.parsed->tcp) continue;
    if (outcome.parsed->tcp->src_port == 443 || outcome.parsed->tcp->dst_port == 443)
      ++tcp443;
    auto payload = outcome.parsed->payload_view(trace.packets[i]);
    if (payload.size() >= 5 && payload[0] == 0x17 && payload[1] == 0x03 &&
        payload[2] == 0x03)
      ++app_records;
  }
  EXPECT_GT(tcp443, 0u);
  EXPECT_GT(app_records, 0u) << "DoH flows must carry TLS application records";
}

TEST(Drift, VariantTagIsCanonical) {
  TraceVariant v;
  EXPECT_EQ(v.tag(), "default");
  v.drift_epoch = 3;
  EXPECT_FALSE(v.is_default());
  TraceVariant w = v;
  EXPECT_TRUE(v == w);
  w.quic_fraction = 0.5;
  EXPECT_FALSE(v == w);
  EXPECT_NE(v.tag(), w.tag());
  TraceVariant fam;
  fam.family = 1;
  EXPECT_NE(fam.tag(), v.tag());
  EXPECT_NE(fam.tag(), "default");
}

}  // namespace
}  // namespace sugar::trafficgen
