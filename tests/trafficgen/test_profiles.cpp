#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "trafficgen/profiles.h"

namespace sugar::trafficgen {
namespace {

TEST(Profiles, IscxInventory) {
  auto v = iscx_vpn_profiles();
  ASSERT_EQ(v.size(), 16u);
  std::set<int> ids, services;
  std::set<std::string> names;
  for (const auto& p : v) {
    ids.insert(p.class_id);
    services.insert(p.service_id);
    names.insert(p.name);
    EXPECT_FALSE(p.server_ports.empty()) << p.name;
    EXPECT_GT(p.mean_rounds, 0) << p.name;
    EXPECT_FALSE(p.malicious);
  }
  EXPECT_EQ(ids.size(), 16u) << "class ids must be unique";
  EXPECT_EQ(names.size(), 16u);
  EXPECT_EQ(services.size(), static_cast<std::size_t>(Service::kCount));
}

TEST(Profiles, IscxTlsAppsCarrySni) {
  for (const auto& p : iscx_vpn_profiles()) {
    if (p.payload == PayloadKind::TlsRecords) {
      EXPECT_TRUE(p.tls_handshake) << p.name;
      EXPECT_FALSE(p.sni.empty()) << p.name;
    }
  }
}

TEST(Profiles, UstcInventory) {
  auto v = ustc_tfc_profiles();
  ASSERT_EQ(v.size(), 20u);
  int malicious = 0;
  std::set<int> ids;
  for (const auto& p : v) {
    ids.insert(p.class_id);
    if (p.malicious) {
      ++malicious;
      EXPECT_NE(p.c2_magic, 0u) << p.name << " needs a C2 magic";
      EXPECT_EQ(p.payload, PayloadKind::C2Beacon);
    }
  }
  EXPECT_EQ(malicious, 10);
  EXPECT_EQ(ids.size(), 20u);
}

TEST(Profiles, UstcPortsAvoidCleaningFilters) {
  // No benign/malware profile may use a port the Table-13 cleaning filter
  // removes — otherwise the filter would eat task traffic.
  const std::set<std::uint16_t> filtered = {
      53,   67,   68,   123,  137,  161,  546,  547,  5353, 5355,
      1900, 3478, 5351, 6771, 17500, 5005, 5683, 1883, 179, 5900,
      6000, 1863, 8333, 27960, 19};
  for (const auto& profiles : {ustc_tfc_profiles(), iscx_vpn_profiles()}) {
    for (const auto& p : profiles)
      for (auto port : p.server_ports)
        EXPECT_EQ(filtered.count(port), 0u)
            << p.name << " uses filtered port " << port;
  }
}

TEST(Profiles, TlsSiteInventory) {
  auto v = cstn_tls120_profiles();
  ASSERT_EQ(v.size(), 120u);
  std::set<std::tuple<int, int, int>> subnets;
  for (const auto& p : v) {
    EXPECT_EQ(p.server_ports, std::vector<std::uint16_t>{443}) << p.name;
    EXPECT_TRUE(p.use_tcp);
    EXPECT_TRUE(p.tls_handshake);
    EXPECT_EQ(p.payload, PayloadKind::TlsRecords);
    subnets.insert({p.subnet_a, p.subnet_b, p.subnet_c});
  }
  // Class subnets must be distinct: they are the (imperfect) explicit class
  // signal of the TLS-120 task.
  EXPECT_EQ(subnets.size(), 120u);
}

TEST(Profiles, TlsSitesHaveDistinctSizeDistributions) {
  auto v = cstn_tls120_profiles();
  std::set<long> resp_mu_keys;
  for (const auto& p : v)
    resp_mu_keys.insert(std::lround(p.resp_mu * 1000));
  // Response-size means spread over many distinct values (not all equal).
  EXPECT_GT(resp_mu_keys.size(), 100u);
}

}  // namespace
}  // namespace sugar::trafficgen
