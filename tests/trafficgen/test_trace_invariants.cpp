// Whole-trace property tests: every packet emitted by any generator must be
// wire-consistent (parseable, checksum-valid, length-coherent) — the
// invariant that makes the downstream ablation machinery (which re-verifies
// checksums) trustworthy.
#include <gtest/gtest.h>

#include "net/checksum.h"
#include "net/parser.h"
#include "trafficgen/datasets.h"

namespace sugar::trafficgen {
namespace {

enum class Gen { Iscx, Ustc, Cstn, Backbone };

class TraceInvariants : public ::testing::TestWithParam<Gen> {
 protected:
  GeneratedTrace make() {
    GenOptions o;
    o.seed = 31;
    o.flows_per_class = 2;
    o.spurious_fraction = 0.05;
    switch (GetParam()) {
      case Gen::Iscx: return generate_iscx_vpn(o);
      case Gen::Ustc: return generate_ustc_tfc(o);
      case Gen::Cstn: {
        o.spurious_fraction = 0;
        o.strip_tls_handshake = true;
        return generate_cstn_tls120(o);
      }
      case Gen::Backbone: return generate_backbone(31, 30);
    }
    return {};
  }
};

TEST_P(TraceInvariants, EveryPacketParses) {
  auto trace = make();
  ASSERT_GT(trace.size(), 50u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    auto outcome = net::parse_packet(trace.packets[i]);
    EXPECT_TRUE(outcome.ok()) << "packet " << i << " failed to parse";
  }
}

TEST_P(TraceInvariants, Ipv4ChecksumsValid) {
  auto trace = make();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    auto outcome = net::parse_packet(trace.packets[i]);
    if (!outcome.ok() || !outcome.parsed->ipv4) continue;
    const auto& p = *outcome.parsed;
    auto hdr = std::span{trace.packets[i].data}.subspan(p.l3_offset,
                                                        p.ipv4->header_len());
    EXPECT_EQ(net::checksum(hdr), 0) << "packet " << i;
  }
}

TEST_P(TraceInvariants, TransportChecksumsValid) {
  auto trace = make();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    auto outcome = net::parse_packet(trace.packets[i]);
    if (!outcome.ok()) continue;
    const auto& p = *outcome.parsed;
    if (!p.ipv4 || (!p.tcp && !p.udp)) continue;
    auto seg = std::span{trace.packets[i].data}.subspan(p.l4_offset);
    EXPECT_EQ(net::l4_checksum_v4(p.ipv4->src, p.ipv4->dst, p.ip_protocol(), seg), 0)
        << "packet " << i;
  }
}

TEST_P(TraceInvariants, LengthFieldsCoherent) {
  auto trace = make();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    auto outcome = net::parse_packet(trace.packets[i]);
    if (!outcome.ok() || !outcome.parsed->ipv4) continue;
    const auto& p = *outcome.parsed;
    EXPECT_EQ(p.ipv4->total_length + p.l3_offset, trace.packets[i].data.size())
        << "packet " << i;
    if (p.udp)
      EXPECT_EQ(p.udp->length, 8 + p.payload_len) << "packet " << i;
  }
}

TEST_P(TraceInvariants, ParallelArraysAligned) {
  auto trace = make();
  EXPECT_EQ(trace.packets.size(), trace.labels.size());
  EXPECT_EQ(trace.packets.size(), trace.flow_of.size());
}

INSTANTIATE_TEST_SUITE_P(Generators, TraceInvariants,
                         ::testing::Values(Gen::Iscx, Gen::Ustc, Gen::Cstn,
                                           Gen::Backbone),
                         [](const auto& info) {
                           switch (info.param) {
                             case Gen::Iscx: return "IscxVpn";
                             case Gen::Ustc: return "UstcTfc";
                             case Gen::Cstn: return "CstnTls";
                             case Gen::Backbone: return "Backbone";
                           }
                           return "?";
                         });

}  // namespace
}  // namespace sugar::trafficgen
