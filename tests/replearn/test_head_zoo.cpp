#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "ml/metrics.h"
#include "replearn/head.h"
#include "replearn/mae_encoder.h"
#include "replearn/model_zoo.h"

namespace sugar::replearn {
namespace {

std::unique_ptr<Encoder> small_encoder() {
  MaeEncoderConfig cfg;
  cfg.input_dim = 16;
  cfg.hidden = {24};
  cfg.embed_dim = 12;
  return std::make_unique<MaeEncoder>(cfg);
}

std::pair<ml::Matrix, std::vector<int>> separable_data(std::size_t n,
                                                       std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> unif(0, 1);
  ml::Matrix x(n, 16);
  std::vector<int> y;
  for (std::size_t i = 0; i < n; ++i) {
    int cls = static_cast<int>(i % 3);
    for (std::size_t j = 0; j < 16; ++j)
      x(i, j) = 0.2f * unif(rng) + (j == static_cast<std::size_t>(cls) ? 1.0f : 0.0f);
    y.push_back(cls);
  }
  return {std::move(x), std::move(y)};
}

TEST(DownstreamModel, FrozenTrainingLeavesEncoderUntouched) {
  auto enc = small_encoder();
  auto [x, y] = separable_data(120, 1);
  auto before = enc->embed(x, false);

  DownstreamConfig cfg;
  cfg.frozen = true;
  cfg.epochs = 20;
  cfg.validation_fraction = 0;  // this test probes weight invariance
  DownstreamModel dm(enc->clone(), 3, cfg);
  dm.fit(x, y);

  auto after = dm.encoder().embed(x, false);
  EXPECT_EQ(before.data(), after.data())
      << "frozen training must not move encoder weights";
  // Head alone learns the (linearly separable) task.
  auto pred = dm.predict(x);
  EXPECT_GT(ml::evaluate(y, pred, 3).accuracy, 0.9);
}

TEST(DownstreamModel, UnfrozenTrainingMovesEncoder) {
  auto enc = small_encoder();
  auto [x, y] = separable_data(120, 2);
  auto before = enc->embed(x, false);

  DownstreamConfig cfg;
  cfg.frozen = false;
  cfg.epochs = 10;
  DownstreamModel dm(enc->clone(), 3, cfg);
  dm.fit(x, y);

  auto after = dm.encoder().embed(x, false);
  EXPECT_NE(before.data(), after.data());
}

TEST(DownstreamModel, FlowHoldoutValidationPicksGeneralizingEpoch) {
  // Flow-structured data where memorizing the flow noise overfits: each
  // flow has an id-like random offset; class depends only on dim 0.
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<float> unif(0, 1);
  std::size_t n = 300;
  ml::Matrix x(n, 16);
  std::vector<int> y;
  std::vector<int> groups;
  for (std::size_t i = 0; i < n; ++i) {
    int flow = static_cast<int>(i / 10);
    int cls = flow % 2;
    x(i, 0) = 3.0f * static_cast<float>(cls);
    for (std::size_t j = 1; j < 16; ++j)
      x(i, j) = unif(rng);
    y.push_back(cls);
    groups.push_back(flow);
  }
  DownstreamConfig cfg;
  cfg.frozen = true;
  cfg.epochs = 40;
  cfg.flow_holdout_validation = true;
  DownstreamModel dm(small_encoder(), 2, cfg);
  dm.fit(x, y, groups);
  auto pred = dm.predict(x);
  EXPECT_GT(ml::evaluate(y, pred, 2).accuracy, 0.85);
}

TEST(ModelZoo, AllModelsConstruct) {
  for (auto kind : all_model_kinds()) {
    for (auto mode : {TaskMode::Packet, TaskMode::Flow}) {
      auto bundle = make_model(kind, mode);
      ASSERT_NE(bundle.encoder, nullptr) << to_string(kind);
      EXPECT_EQ(bundle.name, to_string(kind));
      EXPECT_GT(bundle.encoder->param_count(), 0u);
      EXPECT_GT(bundle.encoder->embed_dim(), 0u);
      // Input dim of the encoder matches the view dimension.
      std::size_t view_dim = bundle.view_kind == ModelBundle::ViewKind::Multimodal
                                 ? bundle.mm_view.dim()
                                 : bundle.byte_view.dim();
      if (mode == TaskMode::Flow && kind != ModelKind::PcapEncoder)
        view_dim *= static_cast<std::size_t>(bundle.flow_packets);
      EXPECT_EQ(bundle.encoder->input_dim(), view_dim) << to_string(kind);
    }
  }
}

TEST(ModelZoo, PacRepExtensionConstructs) {
  auto pacrep = make_model(ModelKind::PacRep);
  EXPECT_EQ(pacrep.name, "PacRep");
  EXPECT_TRUE(pacrep.byte_view.zero_ip_addresses);
  EXPECT_TRUE(pacrep.byte_view.zero_ports);
  // Not part of the paper's evaluated set.
  auto kinds = all_model_kinds();
  EXPECT_EQ(std::count(kinds.begin(), kinds.end(), ModelKind::PacRep), 0);
}

TEST(ModelZoo, InputPoliciesMatchAppendixA2) {
  auto etbert = make_model(ModelKind::EtBert);
  EXPECT_FALSE(etbert.byte_view.include_ip_header);  // "remove IP header"
  EXPECT_TRUE(etbert.byte_view.zero_ports);          // "remove TCP ports"
  EXPECT_TRUE(etbert.byte_view.include_payload);

  auto yatc = make_model(ModelKind::YaTC);
  EXPECT_TRUE(yatc.byte_view.zero_ip_addresses);  // "anonymize IPs and ports"
  EXPECT_TRUE(yatc.byte_view.zero_ports);

  auto pcap = make_model(ModelKind::PcapEncoder);
  EXPECT_FALSE(pcap.byte_view.include_payload);  // header-only by design
  EXPECT_FALSE(pcap.byte_view.zero_ip_addresses);

  auto netfound = make_model(ModelKind::NetFound);
  EXPECT_EQ(netfound.view_kind, ModelBundle::ViewKind::Multimodal);

  // Efficiency ordering (Fig. 6): netFound largest, NetMamba smallest.
  auto netmamba = make_model(ModelKind::NetMamba);
  EXPECT_GT(netfound.encoder->param_count(), netmamba.encoder->param_count());
}

}  // namespace
}  // namespace sugar::replearn
