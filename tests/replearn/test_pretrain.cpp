#include <gtest/gtest.h>

#include "dataset/task.h"
#include "replearn/pretrain.h"

namespace sugar::replearn {
namespace {

dataset::PacketDataset small_backbone() {
  auto trace = trafficgen::generate_backbone(51, 25);
  return dataset::make_unlabeled_dataset(trace);
}

ml::Matrix probe_input(const ModelBundle& b) {
  return ml::Matrix(4, b.encoder->input_dim(), 0.3f);
}

TEST(Pretrain, MovesEncoderWeights) {
  auto backbone = small_backbone();
  for (auto kind : {ModelKind::EtBert, ModelKind::NetFound, ModelKind::PcapEncoder}) {
    auto bundle = make_model(kind, TaskMode::Packet);
    auto x = probe_input(bundle);
    auto before = bundle.encoder->embed(x, false);

    BackbonePretrainOptions opts;
    opts.pretrain.epochs = 2;
    opts.max_samples = 600;
    pretrain_on_backbone(bundle, backbone, opts);

    auto after = bundle.encoder->embed(x, false);
    EXPECT_NE(before.data(), after.data()) << to_string(kind);
  }
}

TEST(Pretrain, FlowModePretrainsOnWindows) {
  auto backbone = small_backbone();
  auto bundle = make_model(ModelKind::YaTC, TaskMode::Flow);
  auto x = probe_input(bundle);
  auto before = bundle.encoder->embed(x, false);

  BackbonePretrainOptions opts;
  opts.pretrain.epochs = 2;
  opts.max_samples = 600;
  pretrain_on_backbone(bundle, backbone, opts);
  EXPECT_NE(before.data(), bundle.encoder->embed(x, false).data());
}

TEST(Pretrain, DeterministicForSeed) {
  auto backbone = small_backbone();
  auto run = [&]() {
    auto bundle = make_model(ModelKind::NetMamba, TaskMode::Packet);
    BackbonePretrainOptions opts;
    opts.pretrain.epochs = 2;
    opts.max_samples = 500;
    opts.seed = 77;
    pretrain_on_backbone(bundle, backbone, opts);
    ml::Matrix x(2, bundle.encoder->input_dim(), 0.4f);
    return bundle.encoder->embed(x, false);
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.data(), b.data());
}

TEST(Pretrain, SampleCapRespected) {
  // With a tiny cap the run must still work (and be fast).
  auto backbone = small_backbone();
  auto bundle = make_model(ModelKind::EtBert, TaskMode::Packet);
  BackbonePretrainOptions opts;
  opts.pretrain.epochs = 1;
  opts.max_samples = 64;
  pretrain_on_backbone(bundle, backbone, opts);
  SUCCEED();
}

}  // namespace
}  // namespace sugar::replearn
