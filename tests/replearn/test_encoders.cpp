#include <gtest/gtest.h>

#include <random>

#include "replearn/mae_encoder.h"
#include "replearn/pcap_encoder.h"

namespace sugar::replearn {
namespace {

ml::Matrix structured_data(std::size_t n, std::size_t d, std::uint64_t seed) {
  // Half the dims are a low-rank pattern (reconstructible), half pure noise
  // (not reconstructible) — the "header vs encrypted payload" structure.
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> unif(0, 1);
  ml::Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    float basis = unif(rng);
    for (std::size_t j = 0; j < d / 2; ++j)
      x(i, j) = basis * (j % 3 == 0 ? 1.0f : 0.5f);
    for (std::size_t j = d / 2; j < d; ++j) x(i, j) = unif(rng);
  }
  return x;
}

TEST(MaeEncoder, PretrainingReducesReconstructionError) {
  MaeEncoderConfig cfg;
  cfg.input_dim = 40;
  cfg.hidden = {32};
  cfg.embed_dim = 16;
  MaeEncoder enc(cfg);

  auto train = structured_data(400, 40, 1);
  auto held_out = structured_data(100, 40, 2);

  float before = enc.reconstruction_error(held_out);
  PretrainOptions opts;
  opts.epochs = 8;
  enc.pretrain(train, opts);
  float after = enc.reconstruction_error(held_out);
  EXPECT_LT(after, before * 0.8f);
}

TEST(MaeEncoder, EmbedShapeAndDeterminism) {
  MaeEncoderConfig cfg;
  cfg.input_dim = 20;
  cfg.embed_dim = 8;
  MaeEncoder enc(cfg);
  auto x = structured_data(5, 20, 3);
  auto e1 = enc.embed(x, false);
  auto e2 = enc.embed(x, false);
  ASSERT_EQ(e1.rows(), 5u);
  ASSERT_EQ(e1.cols(), 8u);
  EXPECT_EQ(e1.data(), e2.data());
}

TEST(MaeEncoder, CloneIsIndependent) {
  MaeEncoderConfig cfg;
  cfg.input_dim = 20;
  cfg.embed_dim = 8;
  MaeEncoder enc(cfg);
  auto x = structured_data(10, 20, 4);
  auto before = enc.embed(x, false);

  auto clone = enc.clone();
  // Train the clone; the original must not move.
  PretrainOptions opts;
  opts.epochs = 3;
  static_cast<MaeEncoder*>(clone.get())->pretrain(x, opts);
  auto after_original = enc.embed(x, false);
  EXPECT_EQ(before.data(), after_original.data());
  auto after_clone = clone->embed(x, false);
  EXPECT_NE(before.data(), after_clone.data());
}

TEST(MaeEncoder, ReinitializeDiscardsPretraining) {
  MaeEncoderConfig cfg;
  cfg.input_dim = 20;
  cfg.embed_dim = 8;
  MaeEncoder enc(cfg);
  auto x = structured_data(10, 20, 5);
  auto before = enc.embed(x, false);
  enc.reinitialize(999);
  auto after = enc.embed(x, false);
  EXPECT_NE(before.data(), after.data());
}

TEST(MaeEncoder, UnfrozenGradientsChangeEncoder) {
  MaeEncoderConfig cfg;
  cfg.input_dim = 12;
  cfg.embed_dim = 6;
  MaeEncoder enc(cfg);
  auto x = structured_data(8, 12, 6);
  auto before = enc.embed(x, false);

  // Push a gradient through: embeddings must move after the step.
  auto emb = enc.embed(x, true);
  ml::Matrix grad(emb.rows(), emb.cols(), 0.1f);
  enc.zero_grad();
  enc.backward_into(grad);
  enc.adam_step(0.01f);
  auto after = enc.embed(x, false);
  EXPECT_NE(before.data(), after.data());
}

TEST(PcapEncoder, QaPhaseLearnsHeaderSemantics) {
  PcapEncoderConfig cfg;
  cfg.input_dim = 64;
  cfg.hidden = {48, 48};
  cfg.embed_dim = 24;
  cfg.qa_dim = 10;
  PcapEncoder enc(cfg);

  // Targets: a simple function of the first input dims (a stand-in for
  // "read the TTL field").
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<float> unif(0, 1);
  ml::Matrix x(500, 64);
  ml::Matrix targets(500, 10);
  for (std::size_t i = 0; i < 500; ++i) {
    for (std::size_t j = 0; j < 64; ++j) x(i, j) = unif(rng) > 0.5f ? 1.0f : 0.0f;
    for (std::size_t q = 0; q < 10; ++q) targets(i, q) = x(i, q * 3);
  }

  float before = enc.qa_error(x, targets);
  PretrainOptions opts;
  opts.epochs = 4;
  enc.pretrain(x, opts);
  enc.pretrain_supervised(x, targets, opts);
  float after = enc.qa_error(x, targets);
  EXPECT_LT(after, before * 0.3f);
}

TEST(PcapEncoder, AblationSwitchesDisablePhases) {
  PcapEncoderConfig cfg;
  cfg.input_dim = 32;
  cfg.hidden = {16, 16};
  cfg.embed_dim = 8;
  cfg.enable_autoencoder_phase = false;
  cfg.enable_qa_phase = false;
  PcapEncoder enc(cfg);

  auto x = structured_data(50, 32, 8);
  auto before = enc.embed(x, false);
  PretrainOptions opts;
  opts.epochs = 3;
  enc.pretrain(x, opts);  // disabled -> no-op
  ml::Matrix targets(50, cfg.qa_dim, 0.5f);
  enc.pretrain_supervised(x, targets, opts);  // disabled -> no-op
  auto after = enc.embed(x, false);
  EXPECT_EQ(before.data(), after.data());
}

TEST(PcapEncoder, ParamCountPositive) {
  PcapEncoderConfig cfg;
  PcapEncoder enc(cfg);
  EXPECT_GT(enc.param_count(), 10000u);
  EXPECT_EQ(enc.name(), "Pcap-Encoder");
  EXPECT_EQ(enc.embed_dim(), cfg.embed_dim);
}

}  // namespace
}  // namespace sugar::replearn
