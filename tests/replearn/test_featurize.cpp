#include <gtest/gtest.h>

#include <numeric>

#include "net/serializer.h"
#include "replearn/featurize.h"

namespace sugar::replearn {
namespace {

dataset::PacketDataset one_packet_dataset() {
  net::FrameSpec spec;
  net::Ipv4Header ip;
  ip.src = net::Ipv4Address::from_octets(192, 168, 0, 9);
  ip.dst = net::Ipv4Address::from_octets(104, 16, 8, 77);
  ip.ttl = 57;
  spec.ipv4 = ip;
  net::TcpHeader tcp;
  tcp.src_port = 51555;
  tcp.dst_port = 443;
  tcp.seq = 0xA1B2C3D4;
  tcp.ack = 0x01020304;
  tcp.ack_flag = true;
  tcp.window = 0x1234;
  tcp.options.timestamp = {{7, 9}};
  spec.tcp = tcp;
  spec.payload = {0xAA, 0xBB, 0xCC};

  dataset::PacketDataset ds;
  ds.num_classes = 1;
  ds.packets.push_back(net::build_packet(spec, 0));
  ds.parsed.push_back(*net::parse_packet(ds.packets[0]).parsed);
  ds.label.push_back(0);
  ds.flow_id.push_back(0);
  return ds;
}

TEST(ByteView, HeaderOnlyExcludesPayload) {
  auto ds = one_packet_dataset();
  ByteViewSpec spec;
  spec.length = 80;
  spec.include_payload = false;
  spec.bit_encode = false;
  auto x = byte_view_matrix(ds, {0}, spec);
  ASSERT_EQ(x.cols(), 80u);
  // Payload byte 0xAA/255 must not appear anywhere.
  for (std::size_t j = 0; j < x.cols(); ++j)
    EXPECT_NE(x(0, j), static_cast<float>(0xAA) / 255.0f);
  // First byte is the IPv4 version/IHL byte 0x45.
  EXPECT_FLOAT_EQ(x(0, 0), static_cast<float>(0x45) / 255.0f);
}

TEST(ByteView, DropIpHeaderStartsAtTcp) {
  auto ds = one_packet_dataset();
  ByteViewSpec spec;
  spec.length = 40;
  spec.include_ip_header = false;
  spec.bit_encode = false;
  auto x = byte_view_matrix(ds, {0}, spec);
  // First two bytes are the source port (51555 = 0xC963).
  EXPECT_FLOAT_EQ(x(0, 0), static_cast<float>(0xC9) / 255.0f);
  EXPECT_FLOAT_EQ(x(0, 1), static_cast<float>(0x63) / 255.0f);
}

TEST(ByteView, ZeroPortsAnonymizes) {
  auto ds = one_packet_dataset();
  ByteViewSpec spec;
  spec.length = 40;
  spec.include_ip_header = false;
  spec.zero_ports = true;
  spec.bit_encode = false;
  auto x = byte_view_matrix(ds, {0}, spec);
  EXPECT_FLOAT_EQ(x(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(x(0, 3), 0.0f);
  // Seq number bytes survive at offset 4.
  EXPECT_FLOAT_EQ(x(0, 4), static_cast<float>(0xA1) / 255.0f);
}

TEST(ByteView, ZeroIpAddresses) {
  auto ds = one_packet_dataset();
  ByteViewSpec spec;
  spec.length = 40;
  spec.zero_ip_addresses = true;
  spec.bit_encode = false;
  auto x = byte_view_matrix(ds, {0}, spec);
  for (std::size_t j = 12; j < 20; ++j) EXPECT_FLOAT_EQ(x(0, j), 0.0f);
  EXPECT_FLOAT_EQ(x(0, 8), 57.0f / 255.0f);  // TTL kept
}

TEST(ByteView, BitEncodeRoundTrip) {
  auto ds = one_packet_dataset();
  ByteViewSpec spec;
  spec.length = 20;
  spec.bit_encode = true;
  ASSERT_EQ(spec.dim(), 160u);
  auto x = byte_view_matrix(ds, {0}, spec);
  // Reassemble byte 0 from its bits -> 0x45.
  int byte0 = 0;
  for (int b = 0; b < 8; ++b)
    if (x(0, static_cast<std::size_t>(b)) > 0.5f) byte0 |= 1 << b;
  EXPECT_EQ(byte0, 0x45);
  for (std::size_t j = 0; j < x.cols(); ++j)
    EXPECT_TRUE(x(0, j) == 0.0f || x(0, j) == 1.0f);
}

TEST(ByteView, RepeatTilesTheView) {
  auto ds = one_packet_dataset();
  ByteViewSpec spec;
  spec.length = 30;
  spec.repeat = 3;
  spec.bit_encode = false;
  ASSERT_EQ(spec.dim(), 90u);
  auto x = byte_view_matrix(ds, {0}, spec);
  for (std::size_t j = 0; j < 30; ++j) {
    EXPECT_EQ(x(0, j), x(0, 30 + j));
    EXPECT_EQ(x(0, j), x(0, 60 + j));
  }
}

TEST(HeaderFeatures, ValuesMatchPacket) {
  auto ds = one_packet_dataset();
  auto names = header_feature_names({});
  auto x = header_feature_matrix(ds, {0}, {});
  ASSERT_EQ(x.cols(), names.size());
  auto at = [&](const std::string& name) {
    auto it = std::find(names.begin(), names.end(), name);
    EXPECT_NE(it, names.end()) << name;
    return x(0, static_cast<std::size_t>(it - names.begin()));
  };
  EXPECT_FLOAT_EQ(at("SRC IP0"), 192);
  EXPECT_FLOAT_EQ(at("DST IP3"), 77);
  EXPECT_FLOAT_EQ(at("IP TTL"), 57);
  EXPECT_FLOAT_EQ(at("SRC Port"), 51555);
  EXPECT_FLOAT_EQ(at("DST Port"), 443);
  EXPECT_FLOAT_EQ(at("TCP Window"), 0x1234);
  EXPECT_FLOAT_EQ(at("TCP TSval"), 7);
  EXPECT_FLOAT_EQ(at("Payload Length"), 3);
  EXPECT_FLOAT_EQ(at("IP Proto"), 6);
}

TEST(HeaderFeatures, WithoutIpDropsEightColumns) {
  auto with = header_feature_names({.include_ip_addresses = true});
  auto without = header_feature_names({.include_ip_addresses = false});
  EXPECT_EQ(with.size(), without.size() + 8);
  EXPECT_EQ(std::count(without.begin(), without.end(), "SRC IP0"), 0);
}

TEST(QaTargets, BitwiseAnswers) {
  auto ds = one_packet_dataset();
  auto names = qa_target_names();
  ASSERT_EQ(qa_target_dim(), names.size());
  auto t = qa_target_matrix(ds, {0});
  ASSERT_EQ(t.cols(), names.size());
  auto at = [&](const std::string& name) {
    auto it = std::find(names.begin(), names.end(), name);
    EXPECT_NE(it, names.end()) << name;
    return t(0, static_cast<std::size_t>(it - names.begin()));
  };
  // src octet0 = 192 = 0b11000000: bit6 and bit7 set.
  EXPECT_FLOAT_EQ(at("src_ip0_bit7"), 1.0f);
  EXPECT_FLOAT_EQ(at("src_ip0_bit6"), 1.0f);
  EXPECT_FLOAT_EQ(at("src_ip0_bit0"), 0.0f);
  // dst octet3 = 77 = 0b01001101.
  EXPECT_FLOAT_EQ(at("dst_ip3_bit0"), 1.0f);
  EXPECT_FLOAT_EQ(at("dst_ip3_bit1"), 0.0f);
  EXPECT_FLOAT_EQ(at("dst_ip3_bit6"), 1.0f);
  // The serializer computes correct checksums, so checksum_ok = 1.
  EXPECT_FLOAT_EQ(at("checksum_ok"), 1.0f);
  EXPECT_FLOAT_EQ(at("payload_len"), 3.0f / 3000.0f);
  EXPECT_FLOAT_EQ(at("dst_port"), 443.0f / 65535.0f);
}

TEST(QaTargets, CorruptChecksumDetected) {
  auto ds = one_packet_dataset();
  // Flip a byte in the IP header without recomputing the checksum.
  ds.packets[0].data[net::EthernetHeader::kSize + 8] ^= 0xFF;  // TTL
  ds.parsed[0] = *net::parse_packet(ds.packets[0]).parsed;
  auto t = qa_target_matrix(ds, {0});
  auto names = qa_target_names();
  auto idx = static_cast<std::size_t>(
      std::find(names.begin(), names.end(), "checksum_ok") - names.begin());
  EXPECT_FLOAT_EQ(t(0, idx), 0.0f);
}

TEST(Multimodal, FieldsNormalized) {
  auto ds = one_packet_dataset();
  MultimodalSpec spec;
  auto x = multimodal_matrix(ds, {0}, spec);
  ASSERT_EQ(x.cols(), spec.dim());
  for (std::size_t j = 0; j < x.cols(); ++j) {
    EXPECT_GE(x(0, j), 0.0f);
    EXPECT_LE(x(0, j), 1.1f);
  }
  // Payload bytes at the tail: 0xAA 0xBB 0xCC then padding.
  EXPECT_FLOAT_EQ(x(0, 14), static_cast<float>(0xAA) / 255.0f);
  EXPECT_FLOAT_EQ(x(0, 17), 0.0f);
}

}  // namespace
}  // namespace sugar::replearn
