// Streaming sequence faults (net::FaultInjector::mutate_sequence): each
// delivery-fault mode must damage the stream in exactly the advertised way
// — reordering permutes, duplication only adds copies, mid-flow truncation
// only removes flow suffixes — and a (seed, input) pair must always produce
// the same mutant so fuzz findings replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/fault.h"
#include "net/flow.h"
#include "net/parser.h"
#include "trafficgen/datasets.h"

namespace sugar::net {
namespace {

std::vector<Packet> sample_stream() {
  trafficgen::GenOptions opts;
  opts.seed = 77;
  opts.flows_per_class = 2;
  opts.spurious_fraction = 0.05;  // some keyless packets in the mix
  return trafficgen::generate_iscx_vpn(opts).packets;
}

std::string frame_bytes(const Packet& p) {
  return std::string(reinterpret_cast<const char*>(p.data.data()), p.data.size());
}

/// Frame-content multiset (timestamps excluded: reordering keeps them).
std::multiset<std::string> frame_multiset(const std::vector<Packet>& pkts) {
  std::multiset<std::string> out;
  for (const auto& p : pkts) out.insert(frame_bytes(p));
  return out;
}

TEST(StreamFaults, ReorderPreservesPacketMultiset) {
  const auto stream = sample_stream();
  FaultInjector inj(1);
  auto mutated = inj.mutate_sequence(stream, SequenceFault::ReorderWindow);
  ASSERT_EQ(mutated.size(), stream.size());
  EXPECT_EQ(frame_multiset(mutated), frame_multiset(stream));
  // A window shuffle over a real trace must actually move something.
  bool moved = false;
  for (std::size_t i = 0; i < stream.size(); ++i)
    if (frame_bytes(mutated[i]) != frame_bytes(stream[i])) moved = true;
  EXPECT_TRUE(moved);
}

TEST(StreamFaults, ReorderStaysInsideWindow) {
  const auto stream = sample_stream();
  SequenceFaultOptions opt;
  opt.reorder_window = 4;
  FaultInjector inj(2);
  auto mutated = inj.mutate_sequence(stream, SequenceFault::ReorderWindow, opt);
  ASSERT_EQ(mutated.size(), stream.size());
  // Window w covers [w*4, w*4+4): each window's contents must match the
  // original window as a multiset.
  for (std::size_t base = 0; base < stream.size(); base += opt.reorder_window) {
    const std::size_t end = std::min(stream.size(), base + opt.reorder_window);
    std::multiset<std::string> got, want;
    for (std::size_t i = base; i < end; ++i) {
      got.insert(frame_bytes(mutated[i]));
      want.insert(frame_bytes(stream[i]));
    }
    EXPECT_EQ(got, want) << "window at " << base;
  }
}

TEST(StreamFaults, DuplicateOnlyAddsCopies) {
  const auto stream = sample_stream();
  SequenceFaultOptions opt;
  opt.duplicate_fraction = 0.2;
  FaultInjector inj(3);
  auto mutated = inj.mutate_sequence(stream, SequenceFault::DuplicateDelivery, opt);
  EXPECT_GT(mutated.size(), stream.size());
  // Every original frame still present, and every mutant frame existed in
  // the original — duplication adds, never invents or removes.
  auto orig = frame_multiset(stream);
  for (const auto& p : mutated)
    EXPECT_TRUE(orig.count(frame_bytes(p)) > 0);
  auto got = frame_multiset(mutated);
  for (const auto& f : orig) EXPECT_TRUE(got.count(f) >= orig.count(f));
}

TEST(StreamFaults, DuplicateCountTracksFraction) {
  const auto stream = sample_stream();
  SequenceFaultOptions opt;
  opt.duplicate_fraction = 0.25;
  FaultInjector inj(4);
  auto mutated = inj.mutate_sequence(stream, SequenceFault::DuplicateDelivery, opt);
  const double extra = static_cast<double>(mutated.size() - stream.size()) /
                       static_cast<double>(stream.size());
  // Bernoulli(0.25) per packet over a few thousand packets: generous bounds.
  EXPECT_GT(extra, 0.1);
  EXPECT_LT(extra, 0.4);
}

TEST(StreamFaults, TruncateCutsFlowSuffixesOnly) {
  const auto stream = sample_stream();
  SequenceFaultOptions opt;
  opt.truncate_flow_fraction = 0.6;
  FaultInjector inj(5);
  auto mutated = inj.mutate_sequence(stream, SequenceFault::TruncateMidFlow, opt);
  ASSERT_LT(mutated.size(), stream.size());

  // Group both streams by flow key: every mutated flow must be a prefix of
  // the original flow's packet sequence.
  auto group = [](const std::vector<Packet>& pkts) {
    std::map<std::string, std::vector<std::string>> flows;
    std::vector<std::string> keyless;
    for (const auto& p : pkts) {
      auto parsed = parse_packet(p);
      FlowKey key;
      bool fwd = false;
      if (parsed.ok() && FlowKey::from_parsed(*parsed.parsed, key, fwd)) {
        std::string id(reinterpret_cast<const char*>(&key), sizeof key);
        flows[id].push_back(
            std::string(reinterpret_cast<const char*>(p.data.data()),
                        p.data.size()));
      } else {
        keyless.push_back(
            std::string(reinterpret_cast<const char*>(p.data.data()),
                        p.data.size()));
      }
    }
    return std::make_pair(flows, keyless);
  };
  auto [orig_flows, orig_keyless] = group(stream);
  auto [mut_flows, mut_keyless] = group(mutated);

  // Keyless packets are never dropped.
  EXPECT_EQ(mut_keyless, orig_keyless);

  std::size_t truncated = 0;
  for (const auto& [id, pkts] : orig_flows) {
    auto it = mut_flows.find(id);
    ASSERT_NE(it, mut_flows.end()) << "flow dropped entirely";
    ASSERT_LE(it->second.size(), pkts.size());
    EXPECT_GE(it->second.size(), opt.truncate_min_kept);
    for (std::size_t i = 0; i < it->second.size(); ++i)
      EXPECT_EQ(it->second[i], pkts[i]) << "not a prefix";
    if (it->second.size() < pkts.size()) ++truncated;
  }
  EXPECT_GT(truncated, 0u);
}

TEST(StreamFaults, SameSeedSameMutant) {
  const auto stream = sample_stream();
  for (auto fault : {SequenceFault::ReorderWindow,
                     SequenceFault::DuplicateDelivery,
                     SequenceFault::TruncateMidFlow}) {
    FaultInjector a(99), b(99);
    auto ma = a.mutate_sequence(stream, fault);
    auto mb = b.mutate_sequence(stream, fault);
    ASSERT_EQ(ma.size(), mb.size()) << to_string(fault);
    for (std::size_t i = 0; i < ma.size(); ++i) {
      EXPECT_EQ(ma[i].ts_usec, mb[i].ts_usec);
      EXPECT_EQ(ma[i].data, mb[i].data) << to_string(fault) << " at " << i;
    }
  }
}

TEST(StreamFaults, UniformPickerCoversEveryFault) {
  const auto stream = sample_stream();
  FaultInjector inj(7);
  for (int i = 0; i < 8; ++i) {
    auto mutated = inj.mutate_sequence(stream);
    EXPECT_FALSE(mutated.empty());
  }
}

TEST(StreamFaults, EmptyAndTinyInputsAreSafe) {
  FaultInjector inj(11);
  const std::vector<Packet> empty;
  for (auto fault : {SequenceFault::ReorderWindow,
                     SequenceFault::DuplicateDelivery,
                     SequenceFault::TruncateMidFlow}) {
    EXPECT_TRUE(inj.mutate_sequence(empty, fault).empty());
    auto one = sample_stream();
    one.resize(1);
    auto m = inj.mutate_sequence(one, fault);
    EXPECT_GE(m.size(), 1u);
  }
}

}  // namespace
}  // namespace sugar::net
