#include <gtest/gtest.h>

#include "net/addr.h"

namespace sugar::net {
namespace {

TEST(Ipv4Address, ParseAndFormat) {
  auto a = Ipv4Address::parse("192.168.1.42");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->to_string(), "192.168.1.42");
  EXPECT_EQ(a->octet(0), 192);
  EXPECT_EQ(a->octet(3), 42);
  EXPECT_FALSE(Ipv4Address::parse("256.0.0.1"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d"));
}

TEST(Ipv4Address, SubnetMembership) {
  auto a = *Ipv4Address::parse("10.1.2.3");
  EXPECT_TRUE(a.in_subnet(Ipv4Address::from_octets(10, 0, 0, 0), 8));
  EXPECT_FALSE(a.in_subnet(Ipv4Address::from_octets(10, 2, 0, 0), 16));
  EXPECT_TRUE(a.in_subnet(Ipv4Address::from_octets(10, 1, 2, 0), 24));
  EXPECT_TRUE(a.in_subnet(a, 32));
  EXPECT_TRUE(a.in_subnet(Ipv4Address{}, 0));
}

TEST(Ipv4Address, Classification) {
  EXPECT_TRUE(Ipv4Address::parse("192.168.0.1")->is_private());
  EXPECT_TRUE(Ipv4Address::parse("10.255.0.1")->is_private());
  EXPECT_TRUE(Ipv4Address::parse("172.16.0.1")->is_private());
  EXPECT_FALSE(Ipv4Address::parse("172.32.0.1")->is_private());
  EXPECT_FALSE(Ipv4Address::parse("8.8.8.8")->is_private());
  EXPECT_TRUE(Ipv4Address::parse("224.0.0.251")->is_multicast());
  EXPECT_TRUE(Ipv4Address::parse("255.255.255.255")->is_broadcast());
}

TEST(Ipv6Address, ParseFull) {
  auto a = Ipv6Address::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->octets[0], 0x20);
  EXPECT_EQ(a->octets[1], 0x01);
  EXPECT_EQ(a->octets[15], 0x01);
}

TEST(Ipv6Address, ParseCompressed) {
  auto a = Ipv6Address::parse("2001:db8::1");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->octets[0], 0x20);
  EXPECT_EQ(a->octets[15], 0x01);
  EXPECT_EQ(a->octets[8], 0x00);

  auto loopback = Ipv6Address::parse("::1");
  ASSERT_TRUE(loopback);
  EXPECT_EQ(loopback->octets[15], 1);

  auto any = Ipv6Address::parse("::");
  ASSERT_TRUE(any);
  for (auto o : any->octets) EXPECT_EQ(o, 0);

  EXPECT_FALSE(Ipv6Address::parse("1::2::3"));
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8:9"));
  EXPECT_FALSE(Ipv6Address::parse("zzzz::"));
}

TEST(Ipv6Address, RoundTrip) {
  auto a = Ipv6Address::parse("fe80::a1b2:c3d4");
  ASSERT_TRUE(a);
  auto b = Ipv6Address::parse(a->to_string());
  ASSERT_TRUE(b);
  EXPECT_EQ(*a, *b);
  EXPECT_TRUE(Ipv6Address::parse("ff02::1")->is_multicast());
}

TEST(MacAddress, ParseFormatAndFlags) {
  auto m = MacAddress::parse("02:1a:4b:00:ff:10");
  ASSERT_TRUE(m);
  EXPECT_EQ(m->to_string(), "02:1a:4b:00:ff:10");
  EXPECT_FALSE(m->is_broadcast());
  EXPECT_FALSE(m->is_multicast());
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE((MacAddress{{0x01, 0, 0x5E, 0, 0, 1}}.is_multicast()));
  EXPECT_FALSE(MacAddress::parse("02:1a:4b:00:ff"));
  EXPECT_FALSE(MacAddress::parse("02:1a:4b:00:ff:zz"));
}

TEST(IpAddress, TotalOrderAcrossFamilies) {
  auto v4 = IpAddress::from_v4(*Ipv4Address::parse("10.0.0.1"));
  auto v6 = IpAddress::from_v6(*Ipv6Address::parse("2001:db8::1"));
  EXPECT_NE(v4, v6);
  EXPECT_EQ(v4.v4().to_string(), "10.0.0.1");
  EXPECT_EQ(v6.v6().to_string(), Ipv6Address::parse("2001:db8::1")->to_string());
  // Deterministic ordering exists (used by bi-flow canonicalization).
  EXPECT_TRUE((v4 < v6) || (v6 < v4));
}

}  // namespace
}  // namespace sugar::net
