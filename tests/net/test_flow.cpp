#include <gtest/gtest.h>

#include "net/flow.h"
#include "net/serializer.h"

namespace sugar::net {
namespace {

Packet make_tcp(Ipv4Address src, std::uint16_t sport, Ipv4Address dst,
                std::uint16_t dport, std::uint64_t ts = 0) {
  FrameSpec spec;
  Ipv4Header ip;
  ip.src = src;
  ip.dst = dst;
  spec.ipv4 = ip;
  TcpHeader tcp;
  tcp.src_port = sport;
  tcp.dst_port = dport;
  spec.tcp = tcp;
  return build_packet(spec, ts);
}

TEST(FlowKey, BiFlowCanonicalization) {
  auto a = Ipv4Address::from_octets(192, 168, 0, 1);
  auto b = Ipv4Address::from_octets(10, 0, 0, 1);

  Packet fwd = make_tcp(a, 50000, b, 443);
  Packet rev = make_tcp(b, 443, a, 50000);

  FlowKey k1, k2;
  bool dir1 = false, dir2 = false;
  ASSERT_TRUE(FlowKey::from_parsed(*parse_packet(fwd).parsed, k1, dir1));
  ASSERT_TRUE(FlowKey::from_parsed(*parse_packet(rev).parsed, k2, dir2));

  EXPECT_EQ(k1, k2) << "both directions must map to the same flow key";
  EXPECT_NE(dir1, dir2) << "directions must be distinguished";
  EXPECT_EQ(FlowKeyHash{}(k1), FlowKeyHash{}(k2));
}

TEST(FlowKey, DifferentPortsDifferentFlows) {
  auto a = Ipv4Address::from_octets(192, 168, 0, 1);
  auto b = Ipv4Address::from_octets(10, 0, 0, 1);
  FlowKey k1, k2;
  bool d;
  FlowKey::from_parsed(*parse_packet(make_tcp(a, 50000, b, 443)).parsed, k1, d);
  FlowKey::from_parsed(*parse_packet(make_tcp(a, 50001, b, 443)).parsed, k2, d);
  EXPECT_NE(k1, k2);
}

TEST(FlowKey, KeylessPacketRejected) {
  FrameSpec spec;
  spec.arp = ArpHeader{};
  auto parsed = *parse_packet(build_packet(spec, 0)).parsed;
  FlowKey k;
  bool d;
  EXPECT_FALSE(FlowKey::from_parsed(parsed, k, d));
}

TEST(FlowTable, GroupsBidirectionalTraffic) {
  auto client = Ipv4Address::from_octets(192, 168, 0, 1);
  auto server = Ipv4Address::from_octets(10, 0, 0, 1);
  auto other = Ipv4Address::from_octets(10, 0, 0, 2);

  std::vector<Packet> trace;
  trace.push_back(make_tcp(client, 50000, server, 443, 1));  // flow 0 ->
  trace.push_back(make_tcp(server, 443, client, 50000, 2));  // flow 0 <-
  trace.push_back(make_tcp(client, 50001, other, 80, 3));    // flow 1 ->
  trace.push_back(make_tcp(client, 50000, server, 443, 4));  // flow 0 ->
  FrameSpec arp_spec;
  arp_spec.arp = ArpHeader{};
  trace.push_back(build_packet(arp_spec, 5));  // keyless

  auto table = assemble_flows(trace);
  ASSERT_EQ(table.flows().size(), 2u);
  EXPECT_EQ(table.flows()[0].size(), 3u);
  EXPECT_EQ(table.flows()[1].size(), 1u);
  EXPECT_EQ(table.keyless_packets().size(), 1u);
  EXPECT_EQ(table.flow_of_packet(), (std::vector<int>{0, 0, 1, 0, -1}));

  // Direction bookkeeping: packets 0 and 3 same direction, 1 opposite.
  const auto& f0 = table.flows()[0];
  EXPECT_EQ(f0.packets[0].forward, f0.packets[2].forward);
  EXPECT_NE(f0.packets[0].forward, f0.packets[1].forward);
  EXPECT_EQ(f0.first_ts_usec, 1u);
  EXPECT_EQ(f0.last_ts_usec, 4u);
}

TEST(FlowTable, UdpAndTcpSameTupleAreDistinct) {
  auto a = Ipv4Address::from_octets(1, 1, 1, 1);
  auto b = Ipv4Address::from_octets(2, 2, 2, 2);
  std::vector<Packet> trace;
  trace.push_back(make_tcp(a, 1000, b, 2000));
  FrameSpec spec;
  Ipv4Header ip;
  ip.src = a;
  ip.dst = b;
  spec.ipv4 = ip;
  UdpHeader udp;
  udp.src_port = 1000;
  udp.dst_port = 2000;
  spec.udp = udp;
  trace.push_back(build_packet(spec, 0));
  auto table = assemble_flows(trace);
  EXPECT_EQ(table.flows().size(), 2u);
}

}  // namespace
}  // namespace sugar::net
