#include <gtest/gtest.h>

#include "net/bytes.h"

namespace sugar::net {
namespace {

TEST(ByteWriter, WritesBigEndian) {
  ByteWriter w;
  w.u8(0x01);
  w.u16be(0x0203);
  w.u32be(0x04050607);
  w.u64be(0x08090A0B0C0D0E0Full);
  ASSERT_EQ(w.size(), 15u);
  const auto& d = w.data();
  EXPECT_EQ(d[0], 0x01);
  EXPECT_EQ(d[1], 0x02);
  EXPECT_EQ(d[2], 0x03);
  EXPECT_EQ(d[3], 0x04);
  EXPECT_EQ(d[6], 0x07);
  EXPECT_EQ(d[7], 0x08);
  EXPECT_EQ(d[14], 0x0F);
}

TEST(ByteWriter, LittleEndianHelpers) {
  ByteWriter w;
  w.u16le(0x0102);
  w.u32le(0x03040506);
  EXPECT_EQ(w.data()[0], 0x02);
  EXPECT_EQ(w.data()[1], 0x01);
  EXPECT_EQ(w.data()[2], 0x06);
  EXPECT_EQ(w.data()[5], 0x03);
}

TEST(ByteWriter, PatchInPlace) {
  ByteWriter w;
  w.u32be(0);
  w.patch_u16be(1, 0xBEEF);
  EXPECT_EQ(w.data()[1], 0xBE);
  EXPECT_EQ(w.data()[2], 0xEF);
  w.patch_u32be(0, 0x11223344);
  EXPECT_EQ(w.data()[0], 0x11);
  EXPECT_EQ(w.data()[3], 0x44);
  // Out-of-range patches are ignored, not UB.
  w.patch_u16be(3, 0xFFFF);
  EXPECT_EQ(w.data()[3], 0x44);
}

TEST(ByteReader, RoundTripsWriter) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16be(0x1234);
  w.u32be(0xDEADBEEF);
  w.u16le(0x5678);
  auto buf = w.take();

  ByteReader r{buf};
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16be(), 0x1234);
  EXPECT_EQ(r.u32be(), 0xDEADBEEFu);
  EXPECT_EQ(r.u16le(), 0x5678);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, PoisonsOnUnderflow) {
  std::vector<std::uint8_t> buf{1, 2};
  ByteReader r{buf};
  EXPECT_EQ(r.u32be(), 0u);
  EXPECT_FALSE(r.ok());
  // Once poisoned, further reads keep failing even if bytes remain.
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, SeekAndSkip) {
  std::vector<std::uint8_t> buf{1, 2, 3, 4, 5};
  ByteReader r{buf};
  r.skip(2);
  EXPECT_EQ(r.u8(), 3);
  r.seek(0);
  EXPECT_EQ(r.u8(), 1);
  r.seek(5);  // end is a valid position
  EXPECT_TRUE(r.ok());
  r.seek(6);
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, ViewDoesNotCopy) {
  std::vector<std::uint8_t> buf{9, 8, 7, 6};
  ByteReader r{buf};
  auto v = r.view(3);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.data(), buf.data());
  EXPECT_EQ(r.offset(), 3u);
  auto empty = r.view(5);
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(r.ok());
}

TEST(HexWords, PairsBytesLikePcapEncoder) {
  std::vector<std::uint8_t> buf{0x45, 0x00, 0x40, 0x00, 0xF7};
  EXPECT_EQ(hex_words(buf), "4500 4000 F7");
  EXPECT_EQ(hex_words({}), "");
}

}  // namespace
}  // namespace sugar::net
