#include <gtest/gtest.h>

#include "net/checksum.h"
#include "net/parser.h"
#include "net/serializer.h"

namespace sugar::net {
namespace {

TEST(Checksum, Rfc1071WorkedExample) {
  // The classic example from RFC 1071 §3: data 00 01 f2 03 f4 f5 f6 f7.
  std::vector<std::uint8_t> data{0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7};
  std::uint32_t partial = checksum_partial(data);
  // Sum = 0001 + f203 + f4f5 + f6f7 = 2ddf0 -> folded ddf2.
  EXPECT_EQ((partial & 0xFFFF) + (partial >> 16), 0xDDF2u);
  EXPECT_EQ(checksum(data), static_cast<std::uint16_t>(~0xDDF2u));
}

TEST(Checksum, OddLengthPadsWithZero) {
  std::vector<std::uint8_t> even{0x12, 0x34, 0xAB, 0x00};
  std::vector<std::uint8_t> odd{0x12, 0x34, 0xAB};
  EXPECT_EQ(checksum(even), checksum(odd));
}

TEST(Checksum, ValidatedHeaderSumsToZero) {
  // A header with a correct checksum re-checksums to 0.
  std::vector<std::uint8_t> hdr{0x45, 0x00, 0x00, 0x28, 0x1B, 0x2C, 0x40,
                                0x00, 0x40, 0x06, 0x00, 0x00, 0xC0, 0xA8,
                                0x00, 0x01, 0xC0, 0xA8, 0x00, 0x02};
  std::uint16_t c = checksum(hdr);
  hdr[10] = static_cast<std::uint8_t>(c >> 8);
  hdr[11] = static_cast<std::uint8_t>(c);
  EXPECT_EQ(checksum(hdr), 0);
}

TEST(Checksum, BuiltTcpFrameValidates) {
  FrameSpec spec;
  Ipv4Header ip;
  ip.src = Ipv4Address::from_octets(192, 168, 0, 1);
  ip.dst = Ipv4Address::from_octets(10, 0, 0, 1);
  spec.ipv4 = ip;
  TcpHeader tcp;
  tcp.src_port = 40000;
  tcp.dst_port = 443;
  tcp.seq = 0x01020304;
  tcp.ack_flag = true;
  tcp.ack = 0x0A0B0C0D;
  spec.tcp = tcp;
  spec.payload = {1, 2, 3, 4, 5};
  auto frame = build_frame(spec);

  Packet pkt{.ts_usec = 0, .data = frame};
  auto outcome = parse_packet(pkt);
  ASSERT_TRUE(outcome.ok());
  const auto& p = *outcome.parsed;

  // IPv4 header checksum verifies.
  auto ip_hdr = std::span{pkt.data}.subspan(p.l3_offset, p.ipv4->header_len());
  EXPECT_EQ(checksum(ip_hdr), 0);

  // TCP checksum verifies against the pseudo header.
  std::size_t seg_len = pkt.data.size() - p.l4_offset;
  auto segment = std::span{pkt.data}.subspan(p.l4_offset, seg_len);
  EXPECT_EQ(l4_checksum_v4(p.ipv4->src, p.ipv4->dst, 6, segment), 0);
}

TEST(Checksum, V6PseudoHeader) {
  Ipv6Address src = *Ipv6Address::parse("2001:db8::1");
  Ipv6Address dst = *Ipv6Address::parse("2001:db8::2");
  std::vector<std::uint8_t> segment{0x00, 0x35, 0x00, 0x35, 0x00,
                                    0x0C, 0x00, 0x00, 0xDE, 0xAD};
  std::uint16_t c1 = l4_checksum_v6(src, dst, 17, segment);
  // Embedding the checksum must make the total validate to 0.
  segment[6] = static_cast<std::uint8_t>(c1 >> 8);
  segment[7] = static_cast<std::uint8_t>(c1);
  EXPECT_EQ(l4_checksum_v6(src, dst, 17, segment), 0);
}

TEST(Crc32, CheckVector) {
  // The canonical IEEE 802.3 / zlib check value.
  const char* s = "123456789";
  std::span<const std::uint8_t> data{reinterpret_cast<const std::uint8_t*>(s), 9};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(crc32(std::span<const std::uint8_t>{}), 0u);
}

TEST(Crc32, ChainingMatchesOneShot) {
  std::vector<std::uint8_t> data(257);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 37 + 11);
  const std::uint32_t whole = crc32(data);
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{128},
                            std::size_t{256}, data.size()}) {
    std::uint32_t acc = crc32(std::span{data}.first(split));
    acc = crc32(std::span{data}.subspan(split), acc);
    EXPECT_EQ(acc, whole) << "split at " << split;
  }
}

TEST(Crc32, SingleBitFlipDetected) {
  std::vector<std::uint8_t> data(64, 0xA5);
  const std::uint32_t clean = crc32(data);
  for (std::size_t byte : {std::size_t{0}, std::size_t{31}, std::size_t{63}}) {
    for (int bit : {0, 4, 7}) {
      auto flipped = data;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc32(flipped), clean);
    }
  }
}

}  // namespace
}  // namespace sugar::net
