#include <gtest/gtest.h>

#include <sstream>

#include "net/pcap.h"
#include "net/serializer.h"

namespace sugar::net {
namespace {

std::vector<Packet> sample_packets() {
  std::vector<Packet> pkts;
  for (int i = 0; i < 5; ++i) {
    FrameSpec spec;
    Ipv4Header ip;
    ip.src = Ipv4Address::from_octets(10, 0, 0, 1);
    ip.dst = Ipv4Address::from_octets(10, 0, 0, 2);
    spec.ipv4 = ip;
    UdpHeader udp;
    udp.src_port = 1000;
    udp.dst_port = static_cast<std::uint16_t>(2000 + i);
    spec.udp = udp;
    spec.payload.assign(static_cast<std::size_t>(10 + i * 7),
                        static_cast<std::uint8_t>(i));
    pkts.push_back(build_packet(spec, 1'000'000ull * static_cast<std::uint64_t>(i) + 42));
  }
  return pkts;
}

TEST(Pcap, RoundTrip) {
  auto pkts = sample_packets();
  std::stringstream ss;
  {
    PcapWriter writer(ss);
    writer.write_all(pkts);
  }
  PcapReader reader(ss);
  EXPECT_EQ(reader.info().snaplen, 65535u);
  EXPECT_EQ(reader.info().link_type, 1u);
  EXPECT_FALSE(reader.info().nanosecond);

  auto back = reader.read_all();
  ASSERT_EQ(back.size(), pkts.size());
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    EXPECT_EQ(back[i].ts_usec, pkts[i].ts_usec);
    EXPECT_EQ(back[i].data, pkts[i].data);
  }
}

TEST(Pcap, SnaplenTruncates) {
  auto pkts = sample_packets();
  std::stringstream ss;
  {
    PcapWriter writer(ss, /*snaplen=*/50);
    writer.write_all(pkts);
  }
  PcapReader reader(ss);
  auto back = reader.read_all();
  ASSERT_EQ(back.size(), pkts.size());
  for (const auto& p : back) EXPECT_LE(p.data.size(), 50u);
}

TEST(Pcap, RejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW(PcapReader r(empty), PcapError);

  std::stringstream bad;
  bad.write("\x11\x22\x33\x44________________________", 28);
  EXPECT_THROW(PcapReader r(bad), PcapError);
}

TEST(Pcap, TruncatedRecordEndsStream) {
  auto pkts = sample_packets();
  std::stringstream ss;
  {
    PcapWriter writer(ss);
    writer.write_all(pkts);
  }
  std::string blob = ss.str();
  blob.resize(blob.size() - 5);  // cut into the last record
  std::stringstream cut(blob);
  PcapReader reader(cut);
  auto back = reader.read_all();
  EXPECT_EQ(back.size(), pkts.size() - 1);
  // The damage is counted, never silent.
  EXPECT_EQ(reader.stats().records_ok, pkts.size() - 1);
  EXPECT_EQ(reader.stats().records_truncated, 1u);
  EXPECT_EQ(reader.stats().total_records(), pkts.size());
}

TEST(Pcap, MidRecordTruncationCounted) {
  auto pkts = sample_packets();
  std::stringstream ss;
  {
    PcapWriter writer(ss);
    writer.write_all(pkts);
  }
  std::string blob = ss.str();
  // Cut inside the *data* of the second record: global header (24) + record 1
  // (16 + data) + record 2 header (16) + 3 bytes of its data.
  std::size_t cut = 24 + 16 + pkts[0].data.size() + 16 + 3;
  ASSERT_LT(cut, blob.size());
  blob.resize(cut);
  std::stringstream in(blob);
  PcapReader reader(in);
  auto back = reader.read_all();
  EXPECT_EQ(back.size(), 1u);
  EXPECT_EQ(reader.stats().records_ok, 1u);
  EXPECT_EQ(reader.stats().records_truncated, 1u);
  EXPECT_EQ(reader.stats().corrupt_headers, 0u);
  EXPECT_EQ(reader.stats().total_records(), 2u);
}

TEST(Pcap, ZeroLengthRecordsAreRead) {
  auto le32 = [](std::uint32_t v) {
    return std::string{static_cast<char>(v), static_cast<char>(v >> 8),
                       static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  };
  auto le16 = [](std::uint16_t v) {
    return std::string{static_cast<char>(v), static_cast<char>(v >> 8)};
  };
  // Global header + zero-length record + one 2-byte record.
  std::string blob = le32(0xA1B2C3D4) + le16(2) + le16(4) + le32(0) + le32(0) +
                     le32(65535) + le32(1) +
                     le32(9) + le32(1) + le32(0) + le32(0) +
                     le32(10) + le32(2) + le32(2) + le32(2) + "\xAB\xCD";
  std::stringstream ss(blob);
  PcapReader reader(ss);
  auto back = reader.read_all();
  ASSERT_EQ(back.size(), 2u);
  EXPECT_TRUE(back[0].data.empty());
  EXPECT_EQ(back[0].ts_usec, 9'000'001u);
  ASSERT_EQ(back[1].data.size(), 2u);
  EXPECT_EQ(reader.stats().records_ok, 2u);
  EXPECT_EQ(reader.stats().total_records(), 2u);
}

TEST(Pcap, SnaplenCappedAgainstHostileGlobalHeader) {
  auto le32 = [](std::uint32_t v) {
    return std::string{static_cast<char>(v), static_cast<char>(v >> 8),
                       static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  };
  auto le16 = [](std::uint16_t v) {
    return std::string{static_cast<char>(v), static_cast<char>(v >> 8)};
  };
  // Hostile snaplen 0xFFFFFFFF plus a record claiming a 256 MiB payload.
  std::string blob = le32(0xA1B2C3D4) + le16(2) + le16(4) + le32(0) + le32(0) +
                     le32(0xFFFFFFFF) + le32(1) +
                     le32(1) + le32(0) + le32(0x10000000) + le32(0x10000000);
  std::stringstream ss(blob);
  PcapReader reader(ss);
  EXPECT_EQ(reader.info().snaplen, kMaxSnaplen);
  Packet p;
  // The lying incl_len must be rejected as a corrupt header, not allocated.
  EXPECT_FALSE(reader.next(p));
  EXPECT_EQ(reader.stats().corrupt_headers, 1u);
  EXPECT_EQ(reader.stats().records_ok, 0u);

  // A snaplen of 0 ("no limit") gets the same cap.
  std::string blob0 = le32(0xA1B2C3D4) + le16(2) + le16(4) + le32(0) + le32(0) +
                      le32(0) + le32(1);
  std::stringstream ss0(blob0);
  PcapReader reader0(ss0);
  EXPECT_EQ(reader0.info().snaplen, kMaxSnaplen);
}

TEST(Pcap, SwappedNanosecondMagicWithGarbageTail) {
  auto be32 = [](std::uint32_t v) {
    return std::string{static_cast<char>(v >> 24), static_cast<char>(v >> 16),
                       static_cast<char>(v >> 8), static_cast<char>(v)};
  };
  auto be16 = [](std::uint16_t v) {
    return std::string{static_cast<char>(v >> 8), static_cast<char>(v)};
  };
  // Big-endian nanosecond file: one valid 4-byte record, then a garbage tail.
  std::string blob = be32(0xA1B23C4D) + be16(2) + be16(4) + be32(0) + be32(0) +
                     be32(65535) + be32(1) +
                     be32(3) + be32(250'000'000) + be32(4) + be32(4) +
                     "\x01\x02\x03\x04";
  blob += std::string(40, '\xEE');  // garbage: implausible as record headers
  std::stringstream ss(blob);
  PcapReader reader(ss, ReadPolicy::SkipAndResync);
  EXPECT_TRUE(reader.info().nanosecond);
  EXPECT_TRUE(reader.info().swapped != (std::endian::native == std::endian::big));
  auto back = reader.read_all();
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].ts_usec, 3'250'000u);
  const auto& st = reader.stats();
  EXPECT_EQ(st.records_ok, 1u);
  EXPECT_EQ(st.corrupt_headers, 1u);  // the garbage tail, counted once
  EXPECT_EQ(st.total_records(), 2u);
  EXPECT_GT(st.bytes_skipped, 0u);
}

TEST(Pcap, ResyncRecoversRecordsAfterCorruptHeader) {
  auto pkts = sample_packets();
  std::stringstream ss;
  {
    PcapWriter writer(ss);
    writer.write_all(pkts);
  }
  std::string blob = ss.str();
  // Corrupt the incl_len of record 2 (0xFFFFFFFF is endianness-symmetric).
  std::size_t rec2 = 24 + 16 + pkts[0].data.size();
  for (std::size_t i = rec2 + 8; i < rec2 + 12; ++i) blob[i] = '\xFF';

  {  // Strict: stop at the corruption, but count it.
    std::stringstream in(blob);
    PcapReader reader(in, ReadPolicy::Strict);
    auto back = reader.read_all();
    EXPECT_EQ(back.size(), 1u);
    EXPECT_EQ(reader.stats().corrupt_headers, 1u);
    EXPECT_EQ(reader.stats().total_records(), 2u);
  }
  {  // SkipAndResync: recover every record after the damaged one.
    std::stringstream in(blob);
    PcapReader reader(in, ReadPolicy::SkipAndResync);
    auto back = reader.read_all();
    ASSERT_EQ(back.size(), pkts.size() - 1);
    EXPECT_EQ(back[0].data, pkts[0].data);
    for (std::size_t i = 1; i < back.size(); ++i) {
      EXPECT_EQ(back[i].data, pkts[i + 1].data);
      EXPECT_EQ(back[i].ts_usec, pkts[i + 1].ts_usec);
    }
    const auto& st = reader.stats();
    EXPECT_EQ(st.records_ok, pkts.size() - 1);
    EXPECT_EQ(st.corrupt_headers, 1u);
    EXPECT_EQ(st.resyncs, 1u);
    EXPECT_GT(st.bytes_skipped, 0u);
    EXPECT_EQ(st.total_records(), pkts.size());
  }
}

TEST(Pcap, ReadsSwappedEndianness) {
  // Hand-build a big-endian (swapped relative to our writer) file with one
  // 4-byte record.
  auto be32 = [](std::uint32_t v) {
    return std::string{static_cast<char>(v >> 24), static_cast<char>(v >> 16),
                       static_cast<char>(v >> 8), static_cast<char>(v)};
  };
  auto be16 = [](std::uint16_t v) {
    return std::string{static_cast<char>(v >> 8), static_cast<char>(v)};
  };
  std::string blob = be32(0xA1B2C3D4) + be16(2) + be16(4) + be32(0) + be32(0) +
                     be32(65535) + be32(1) +
                     be32(7) + be32(123) + be32(4) + be32(4) + "\xAA\xBB\xCC\xDD";
  std::stringstream ss(blob);
  PcapReader reader(ss);
  EXPECT_TRUE(reader.info().swapped != (std::endian::native == std::endian::big));
  Packet p;
  ASSERT_TRUE(reader.next(p));
  EXPECT_EQ(p.ts_usec, 7'000'123u);
  ASSERT_EQ(p.data.size(), 4u);
  EXPECT_EQ(p.data[0], 0xAA);
}

TEST(Pcap, NanosecondMagic) {
  auto le32 = [](std::uint32_t v) {
    return std::string{static_cast<char>(v), static_cast<char>(v >> 8),
                       static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  };
  auto le16 = [](std::uint16_t v) {
    return std::string{static_cast<char>(v), static_cast<char>(v >> 8)};
  };
  std::string blob = le32(0xA1B23C4D) + le16(2) + le16(4) + le32(0) + le32(0) +
                     le32(65535) + le32(1) +
                     le32(1) + le32(500'000'000) + le32(2) + le32(2) + "\x01\x02";
  std::stringstream ss(blob);
  PcapReader reader(ss);
  EXPECT_TRUE(reader.info().nanosecond);
  Packet p;
  ASSERT_TRUE(reader.next(p));
  EXPECT_EQ(p.ts_usec, 1'500'000u);  // 1 s + 500 ms
}

TEST(Pcap, FileHelpers) {
  auto pkts = sample_packets();
  std::string path = ::testing::TempDir() + "/sugar_test.pcap";
  write_pcap_file(path, pkts);
  auto back = read_pcap_file(path);
  ASSERT_EQ(back.size(), pkts.size());
  EXPECT_EQ(back[2].data, pkts[2].data);
  EXPECT_THROW(read_pcap_file("/nonexistent/zzz.pcap"), PcapError);
}

}  // namespace
}  // namespace sugar::net
