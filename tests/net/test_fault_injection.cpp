#include <gtest/gtest.h>

#include <sstream>

#include "net/fault.h"
#include "net/parser.h"
#include "net/pcap.h"
#include "net/serializer.h"
#include "trafficgen/payload.h"

namespace sugar::net {
namespace {

Packet tcp_packet_with_options(std::uint8_t salt) {
  FrameSpec spec;
  Ipv4Header ip;
  ip.src = Ipv4Address::from_octets(10, 0, 0, salt);
  ip.dst = Ipv4Address::from_octets(192, 168, 1, salt);
  spec.ipv4 = ip;
  TcpHeader tcp;
  tcp.src_port = 443;
  tcp.dst_port = static_cast<std::uint16_t>(50000 + salt);
  tcp.seq = 0x1000u * salt;
  tcp.options.mss = 1460;
  tcp.options.timestamp = {{0xAABB0000u + salt, 0x1122u}};
  spec.tcp = tcp;
  spec.payload.assign(40 + salt, 0xEE);
  return build_packet(spec, 1'700'000'000'000'000ull + salt);
}

Packet udp_packet(std::uint8_t salt) {
  FrameSpec spec;
  Ipv4Header ip;
  ip.src = Ipv4Address::from_octets(10, 0, 1, salt);
  ip.dst = Ipv4Address::from_octets(10, 0, 2, salt);
  spec.ipv4 = ip;
  UdpHeader udp;
  udp.src_port = 53;
  udp.dst_port = static_cast<std::uint16_t>(40000 + salt);
  spec.udp = udp;
  spec.payload.assign(20 + salt, 0xEE);
  return build_packet(spec, 1'700'000'000'500'000ull + salt);
}

/// QUIC-shaped frame: UDP/443 carrying a long-header initial (first byte
/// 0xC0|x, version 1) or a short-header 1-RTT packet.
Packet quic_packet(std::uint8_t salt, bool long_header) {
  FrameSpec spec;
  Ipv4Header ip;
  ip.src = Ipv4Address::from_octets(10, 1, 0, salt);
  ip.dst = Ipv4Address::from_octets(192, 168, 2, salt);
  spec.ipv4 = ip;
  UdpHeader udp;
  udp.src_port = long_header ? static_cast<std::uint16_t>(50200 + salt) : 443;
  udp.dst_port = long_header ? 443 : static_cast<std::uint16_t>(50200 + salt);
  spec.udp = udp;
  trafficgen::Rng rng(0xAB00u + salt);
  spec.payload = trafficgen::quic_payload(rng, long_header ? 1252 : 160, long_header);
  return build_packet(spec, 1'700'000'001'000'000ull + salt);
}

/// DoH-shaped frame: TCP/443 carrying a burst of small TLS application
/// records (0x17 0x03 0x03 framing).
Packet doh_packet(std::uint8_t salt) {
  FrameSpec spec;
  Ipv4Header ip;
  ip.src = Ipv4Address::from_octets(10, 2, 0, salt);
  ip.dst = Ipv4Address::from_octets(9, 9, 9, salt);
  spec.ipv4 = ip;
  TcpHeader tcp;
  tcp.src_port = static_cast<std::uint16_t>(51300 + salt);
  tcp.dst_port = 443;
  tcp.seq = 0x2000u * salt;
  spec.tcp = tcp;
  trafficgen::Rng rng(0xCD00u + salt);
  spec.payload = trafficgen::doh_payload(rng, 200 + salt);
  return build_packet(spec, 1'700'000'002'000'000ull + salt);
}

std::string serialize_pcap(const std::vector<Packet>& pkts) {
  std::stringstream ss;
  PcapWriter writer(ss);
  writer.write_all(pkts);
  return ss.str();
}

/// The core parse invariants every mutant must satisfy.
void expect_parse_invariants(const Packet& mutant, const char* context) {
  auto outcome = parse_packet(mutant);
  ASSERT_NE(outcome.parsed.has_value(), outcome.error.has_value()) << context;
  if (outcome.error) {
    EXPECT_LT(static_cast<std::size_t>(*outcome.error), kParseErrorCount) << context;
    return;
  }
  const auto& p = *outcome.parsed;
  auto cat = classify_spurious(p);
  EXPECT_LT(static_cast<std::size_t>(cat),
            static_cast<std::size_t>(SpuriousCategory::kCount))
      << context;
  EXPECT_LE(p.header_view(mutant).size(), mutant.data.size()) << context;
  EXPECT_LE(p.payload_view(mutant).size(), mutant.data.size()) << context;
  EXPECT_LE(p.l3_offset, mutant.data.size()) << context;
}

TEST(FaultInjection, Deterministic) {
  Packet base = tcp_packet_with_options(1);
  FaultInjector a(77), b(77);
  for (int i = 0; i < 50; ++i) {
    Packet ma = a.mutate_frame(base);
    Packet mb = b.mutate_frame(base);
    ASSERT_EQ(ma.data, mb.data) << "seeded mutation must be replayable";
  }
  std::string wire = serialize_pcap({base, udp_packet(2)});
  FaultInjector c(99), d(99);
  for (int i = 0; i < 50; ++i) ASSERT_EQ(c.mutate_stream(wire), d.mutate_stream(wire));
}

TEST(FaultInjection, TargetedFaultsHitTheTaxonomy) {
  FaultInjector inj(5);
  Packet base = tcp_packet_with_options(3);

  // Cutting inside the Ethernet header must yield TruncatedEthernet.
  Packet cut = inj.mutate_frame(base, FrameFault::TruncateEthernet);
  auto outcome = parse_packet(cut);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(*outcome.error, ParseError::TruncatedEthernet);

  // A zero option-length must be rejected as BadTcpHeader, never spin.
  Packet zopt = inj.mutate_frame(base, FrameFault::ZeroTcpOptionLength);
  outcome = parse_packet(zopt);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(*outcome.error, ParseError::BadTcpHeader);

  // An option length overrunning the header must be rejected too.
  Packet oopt = inj.mutate_frame(base, FrameFault::OversizedTcpOption);
  outcome = parse_packet(oopt);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(*outcome.error, ParseError::BadTcpHeader);
}

// The bounded deterministic fuzz pass: 50k mutated frames through
// parse_packet + classify_spurious. Crashes/UB fail the test (and the
// SUGAR_SANITIZE build catches anything subtler).
TEST(FaultInjection, FrameFuzz50k) {
  std::vector<Packet> corpus = {tcp_packet_with_options(1), udp_packet(2),
                                tcp_packet_with_options(9), udp_packet(17)};
  FaultInjector inj(2024);
  std::size_t rejected = 0, parsed = 0;
  for (std::size_t i = 0; i < 50'000; ++i) {
    auto fault =
        static_cast<FrameFault>(i % static_cast<std::size_t>(FrameFault::kCount));
    Packet mutant = inj.mutate_frame(corpus[i % corpus.size()], fault);
    auto outcome = parse_packet(mutant);
    ASSERT_NE(outcome.parsed.has_value(), outcome.error.has_value())
        << to_string(fault) << " @" << i;
    if (outcome.ok()) {
      ++parsed;
      expect_parse_invariants(mutant, to_string(fault).c_str());
    } else {
      ++rejected;
      ASSERT_LT(static_cast<std::size_t>(*outcome.error), kParseErrorCount);
    }
  }
  // The mutation mix must exercise both sides of the taxonomy heavily.
  EXPECT_GT(rejected, 5'000u);
  EXPECT_GT(parsed, 5'000u);
}

// The QUIC/DoH analogue of FrameFuzz50k: 50k mutants of UDP-encapsulated
// QUIC and DoH-shaped TLS frames. The parser treats their payloads as
// opaque, so the taxonomy and view invariants must hold exactly as for the
// classic corpus.
TEST(FaultInjection, QuicDohFrameFuzz50k) {
  std::vector<Packet> corpus = {quic_packet(1, true), quic_packet(2, false),
                                doh_packet(3), quic_packet(4, true),
                                doh_packet(5)};
  FaultInjector inj(4077);
  std::size_t rejected = 0, parsed = 0;
  for (std::size_t i = 0; i < 50'000; ++i) {
    auto fault =
        static_cast<FrameFault>(i % static_cast<std::size_t>(FrameFault::kCount));
    Packet mutant = inj.mutate_frame(corpus[i % corpus.size()], fault);
    auto outcome = parse_packet(mutant);
    ASSERT_NE(outcome.parsed.has_value(), outcome.error.has_value())
        << to_string(fault) << " @" << i;
    if (outcome.ok()) {
      ++parsed;
      expect_parse_invariants(mutant, to_string(fault).c_str());
    } else {
      ++rejected;
      ASSERT_LT(static_cast<std::size_t>(*outcome.error), kParseErrorCount);
    }
  }
  EXPECT_GT(rejected, 5'000u);
  EXPECT_GT(parsed, 5'000u);
}

// Pinned malformed-frame census for the QUIC/DoH stream shapes: a fixed
// seeded mutation sequence over a fixed pcap must reproduce the exact
// PcapReadStats totals. Any drift in the reader's damage accounting for the
// new frame shapes — a record silently reclassified, a resync taken at a
// different offset — trips this before it can bias a cleaning census.
TEST(FaultInjection, QuicDohStreamCensusPinned) {
  std::vector<Packet> pkts;
  for (std::uint8_t i = 0; i < 8; ++i) {
    if (i % 3 == 0)
      pkts.push_back(quic_packet(i, true));
    else if (i % 3 == 1)
      pkts.push_back(doh_packet(i));
    else
      pkts.push_back(quic_packet(i, false));
  }
  std::string wire = serialize_pcap(pkts);

  FaultInjector inj(90210);
  PcapReadStats total;
  std::size_t header_rejects = 0;
  for (std::size_t i = 0; i < 128; ++i) {
    auto fault = static_cast<StreamFault>(
        i % static_cast<std::size_t>(StreamFault::kCount));
    std::string mutant = inj.mutate_stream(wire, fault);
    std::stringstream ss(mutant);
    try {
      PcapReader reader(ss, ReadPolicy::SkipAndResync);
      auto got = reader.read_all();
      const auto& st = reader.stats();
      ASSERT_EQ(got.size(), st.records_ok);
      total.records_ok += st.records_ok;
      total.records_truncated += st.records_truncated;
      total.corrupt_headers += st.corrupt_headers;
      total.resyncs += st.resyncs;
      total.bytes_skipped += st.bytes_skipped;
    } catch (const PcapError&) {
      ++header_rejects;
    }
  }
  EXPECT_EQ(total.records_ok, 683u);
  EXPECT_EQ(total.records_truncated, 16u);
  EXPECT_EQ(total.corrupt_headers, 32u);
  EXPECT_EQ(total.resyncs, 16u);
  EXPECT_EQ(total.bytes_skipped, 14232u);
  EXPECT_EQ(header_rejects, 32u);
}

// Mutated pcap streams through both read policies: no crash, no unbounded
// allocation, and the stats counters always sum to records encountered.
TEST(FaultInjection, StreamFuzz) {
  std::vector<Packet> pkts;
  for (std::uint8_t i = 0; i < 6; ++i)
    pkts.push_back(i % 2 ? tcp_packet_with_options(i) : udp_packet(i));
  std::string wire = serialize_pcap(pkts);

  FaultInjector inj(31337);
  std::size_t rejected_headers = 0, total_ok = 0;
  for (std::size_t i = 0; i < 2'000; ++i) {
    auto fault = static_cast<StreamFault>(
        i % static_cast<std::size_t>(StreamFault::kCount));
    std::string mutant = inj.mutate_stream(wire, fault);
    for (auto policy : {ReadPolicy::Strict, ReadPolicy::SkipAndResync}) {
      std::stringstream ss(mutant);
      try {
        PcapReader reader(ss, policy);
        auto got = reader.read_all();
        const auto& st = reader.stats();
        ASSERT_EQ(got.size(), st.records_ok) << to_string(fault) << " @" << i;
        ASSERT_EQ(st.total_records(),
                  st.records_ok + st.records_truncated + st.corrupt_headers);
        ASSERT_LE(st.bytes_skipped, mutant.size());
        for (const auto& p : got) ASSERT_LE(p.data.size(), kMaxSnaplen);
        total_ok += st.records_ok;
      } catch (const PcapError&) {
        ++rejected_headers;  // malformed global header: rejection is correct
      }
    }
  }
  EXPECT_GT(rejected_headers, 0u);  // CorruptMagic / TruncateGlobalHeader hit
  EXPECT_GT(total_ok, 0u);          // plenty of records still ingested
}

// End-to-end degradation: a trace whose frames were mauled still cleans
// without crashing, and every rejected frame lands in the malformed census.
TEST(FaultInjection, MutatedFramesSurfaceInCleaningTaxonomy) {
  FaultInjector inj(7);
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < 1'000; ++i) {
    Packet mutant = inj.mutate_frame(tcp_packet_with_options(1));
    auto outcome = parse_packet(mutant);
    if (!outcome.ok()) {
      ++rejected;
      EXPECT_LT(static_cast<std::size_t>(*outcome.error), kParseErrorCount);
    }
  }
  EXPECT_GT(rejected, 0u);
}

}  // namespace
}  // namespace sugar::net
