// Round-trip property tests: frames built by the serializer must parse back
// to the same header fields, for every protocol combination and a sweep of
// payload sizes.
#include <gtest/gtest.h>

#include <random>

#include "net/parser.h"
#include "net/serializer.h"

namespace sugar::net {
namespace {

FrameSpec tcp_spec(std::size_t payload_len, bool with_options) {
  FrameSpec spec;
  spec.eth.src = *MacAddress::parse("02:00:00:00:00:01");
  spec.eth.dst = *MacAddress::parse("02:00:00:00:00:02");
  Ipv4Header ip;
  ip.src = Ipv4Address::from_octets(192, 168, 1, 10);
  ip.dst = Ipv4Address::from_octets(151, 101, 1, 140);
  ip.ttl = 57;
  ip.tos = 0x10;
  ip.identification = 0xBEEF;
  ip.dont_fragment = true;
  spec.ipv4 = ip;
  TcpHeader tcp;
  tcp.src_port = 51000;
  tcp.dst_port = 443;
  tcp.seq = 0xCAFEBABE;
  tcp.ack = 0x0DDF00D5;
  tcp.ack_flag = true;
  tcp.psh = payload_len > 0;
  tcp.window = 0x7210;
  if (with_options) {
    tcp.options.mss = 1460;
    tcp.options.window_scale = 7;
    tcp.options.sack_permitted = true;
    tcp.options.timestamp = {{0x11223344, 0x55667788}};
  }
  spec.tcp = tcp;
  std::mt19937_64 rng(payload_len);
  spec.payload.resize(payload_len);
  for (auto& b : spec.payload) b = static_cast<std::uint8_t>(rng());
  return spec;
}

class TcpRoundTrip : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};

TEST_P(TcpRoundTrip, FieldsSurvive) {
  auto [payload_len, with_options] = GetParam();
  FrameSpec spec = tcp_spec(payload_len, with_options);
  Packet pkt = build_packet(spec, 12345);

  auto outcome = parse_packet(pkt);
  ASSERT_TRUE(outcome.ok());
  const auto& p = *outcome.parsed;
  ASSERT_TRUE(p.eth && p.ipv4 && p.tcp);

  EXPECT_EQ(p.eth->src, spec.eth.src);
  EXPECT_EQ(p.eth->dst, spec.eth.dst);
  EXPECT_EQ(p.eth->ether_type, 0x0800);

  EXPECT_EQ(p.ipv4->src, spec.ipv4->src);
  EXPECT_EQ(p.ipv4->dst, spec.ipv4->dst);
  EXPECT_EQ(p.ipv4->ttl, spec.ipv4->ttl);
  EXPECT_EQ(p.ipv4->tos, spec.ipv4->tos);
  EXPECT_EQ(p.ipv4->identification, spec.ipv4->identification);
  EXPECT_TRUE(p.ipv4->dont_fragment);
  EXPECT_EQ(p.ipv4->total_length, pkt.data.size() - EthernetHeader::kSize);

  EXPECT_EQ(p.tcp->src_port, spec.tcp->src_port);
  EXPECT_EQ(p.tcp->dst_port, spec.tcp->dst_port);
  EXPECT_EQ(p.tcp->seq, spec.tcp->seq);
  EXPECT_EQ(p.tcp->ack, spec.tcp->ack);
  EXPECT_EQ(p.tcp->window, spec.tcp->window);
  EXPECT_EQ(p.tcp->flags_byte(), spec.tcp->flags_byte());
  if (with_options) {
    ASSERT_TRUE(p.tcp->options.mss);
    EXPECT_EQ(*p.tcp->options.mss, 1460);
    ASSERT_TRUE(p.tcp->options.window_scale);
    EXPECT_EQ(*p.tcp->options.window_scale, 7);
    EXPECT_TRUE(p.tcp->options.sack_permitted);
    ASSERT_TRUE(p.tcp->options.timestamp);
    EXPECT_EQ(p.tcp->options.timestamp->first, 0x11223344u);
    EXPECT_EQ(p.tcp->options.timestamp->second, 0x55667788u);
  } else {
    EXPECT_FALSE(p.tcp->options.mss);
    EXPECT_FALSE(p.tcp->options.timestamp);
  }

  EXPECT_EQ(p.payload_len, payload_len);
  auto payload = p.payload_view(pkt);
  ASSERT_EQ(payload.size(), payload_len);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), spec.payload.begin()));
}

INSTANTIATE_TEST_SUITE_P(
    PayloadSweep, TcpRoundTrip,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 2, 7, 64, 536, 1460),
                       ::testing::Bool()));

TEST(Parser, UdpRoundTrip) {
  FrameSpec spec;
  Ipv4Header ip;
  ip.src = Ipv4Address::from_octets(10, 0, 0, 1);
  ip.dst = Ipv4Address::from_octets(8, 8, 8, 8);
  spec.ipv4 = ip;
  UdpHeader udp;
  udp.src_port = 53124;
  udp.dst_port = 53;
  spec.udp = udp;
  spec.payload = {1, 2, 3};
  Packet pkt = build_packet(spec, 0);

  auto outcome = parse_packet(pkt);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome.parsed->udp);
  EXPECT_EQ(outcome.parsed->udp->src_port, 53124);
  EXPECT_EQ(outcome.parsed->udp->dst_port, 53);
  EXPECT_EQ(outcome.parsed->udp->length, 11);
  EXPECT_EQ(outcome.parsed->payload_len, 3u);
}

TEST(Parser, IcmpRoundTrip) {
  FrameSpec spec;
  Ipv4Header ip;
  ip.src = Ipv4Address::from_octets(10, 0, 0, 1);
  ip.dst = Ipv4Address::from_octets(10, 0, 0, 2);
  spec.ipv4 = ip;
  IcmpHeader icmp;
  icmp.type = 8;
  icmp.rest = 0x00010002;
  spec.icmp = icmp;
  spec.payload = std::vector<std::uint8_t>(32, 0x61);
  Packet pkt = build_packet(spec, 0);

  auto outcome = parse_packet(pkt);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome.parsed->icmp);
  EXPECT_EQ(outcome.parsed->icmp->type, 8);
  EXPECT_EQ(outcome.parsed->icmp->rest, 0x00010002u);
  EXPECT_EQ(outcome.parsed->ip_protocol(), 1);
}

TEST(Parser, ArpRoundTrip) {
  FrameSpec spec;
  spec.eth.dst = MacAddress::broadcast();
  ArpHeader arp;
  arp.opcode = 1;
  arp.sender_ip = Ipv4Address::from_octets(192, 168, 0, 5);
  arp.target_ip = Ipv4Address::from_octets(192, 168, 0, 1);
  spec.arp = arp;
  Packet pkt = build_packet(spec, 0);

  auto outcome = parse_packet(pkt);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome.parsed->arp);
  EXPECT_EQ(outcome.parsed->arp->opcode, 1);
  EXPECT_EQ(outcome.parsed->arp->target_ip, arp.target_ip);
  EXPECT_FALSE(outcome.parsed->has_ip());
}

TEST(Parser, Ipv6TcpRoundTrip) {
  FrameSpec spec;
  Ipv6Header ip;
  ip.src = *Ipv6Address::parse("2001:db8::1");
  ip.dst = *Ipv6Address::parse("2001:db8::2");
  ip.hop_limit = 55;
  ip.flow_label = 0xABCDE;
  spec.ipv6 = ip;
  TcpHeader tcp;
  tcp.src_port = 50000;
  tcp.dst_port = 443;
  tcp.seq = 42;
  spec.tcp = tcp;
  spec.payload = {9, 9, 9};
  Packet pkt = build_packet(spec, 0);

  auto outcome = parse_packet(pkt);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome.parsed->ipv6);
  EXPECT_EQ(outcome.parsed->ipv6->src, ip.src);
  EXPECT_EQ(outcome.parsed->ipv6->hop_limit, 55);
  EXPECT_EQ(outcome.parsed->ipv6->flow_label, 0xABCDEu);
  ASSERT_TRUE(outcome.parsed->tcp);
  EXPECT_EQ(outcome.parsed->tcp->dst_port, 443);
  EXPECT_EQ(outcome.parsed->payload_len, 3u);
}

TEST(Parser, TruncatedFramesFailCleanly) {
  FrameSpec spec = tcp_spec(100, true);
  Packet pkt = build_packet(spec, 0);

  // Truncating inside the TCP header is an error.
  Packet cut = pkt;
  cut.data.resize(EthernetHeader::kSize + 20 + 10);
  auto outcome = parse_packet(cut);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error, ParseError::TruncatedTcp);

  // Truncating inside the Ethernet header is an error.
  Packet tiny = pkt;
  tiny.data.resize(10);
  EXPECT_EQ(parse_packet(tiny).error, ParseError::TruncatedEthernet);

  // Truncating payload only is fine (snaplen capture): payload_len shrinks.
  Packet snap = pkt;
  snap.data.resize(snap.data.size() - 50);
  auto ok = parse_packet(snap);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.parsed->payload_len, 50u);
}

TEST(Parser, UnknownEtherTypeStopsAtL2) {
  Packet pkt;
  pkt.data.assign(EthernetHeader::kSize + 8, 0);
  pkt.data[12] = 0x88;  // unknown ethertype 0x88B5
  pkt.data[13] = 0xB5;
  auto outcome = parse_packet(pkt);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.parsed->eth);
  EXPECT_FALSE(outcome.parsed->has_ip());
}

TEST(Parser, BadIpVersionRejected) {
  FrameSpec spec = tcp_spec(0, false);
  Packet pkt = build_packet(spec, 0);
  pkt.data[EthernetHeader::kSize] = 0x35;  // version 3
  EXPECT_EQ(parse_packet(pkt).error, ParseError::BadIpv4Header);
}

TEST(Serializer, TcpOptionsArePadded) {
  TcpOptions opts;
  opts.window_scale = 7;  // 3 bytes -> padded to 4
  auto bytes = encode_tcp_options(opts);
  EXPECT_EQ(bytes.size() % 4, 0u);
  EXPECT_EQ(bytes[0], 3);
  EXPECT_EQ(bytes[1], 3);
  EXPECT_EQ(bytes[2], 7);
  EXPECT_EQ(bytes[3], 1);  // NOP pad
}

TEST(SpuriousClassifier, Taxonomy) {
  // ARP -> network management.
  FrameSpec arp_spec;
  arp_spec.arp = ArpHeader{};
  auto arp = parse_packet(build_packet(arp_spec, 0));
  EXPECT_EQ(classify_spurious(*arp.parsed), SpuriousCategory::NetworkManagement);

  // UDP 5355 -> link-local (LLMNR).
  FrameSpec llmnr;
  Ipv4Header ip;
  ip.src = Ipv4Address::from_octets(192, 168, 0, 3);
  ip.dst = Ipv4Address::from_octets(224, 0, 0, 252);
  llmnr.ipv4 = ip;
  UdpHeader udp;
  udp.src_port = 54321;
  udp.dst_port = 5355;
  llmnr.udp = udp;
  auto l = parse_packet(build_packet(llmnr, 0));
  EXPECT_EQ(classify_spurious(*l.parsed), SpuriousCategory::LinkLocal);

  // TCP 443 app traffic -> None (task-relevant).
  auto app = parse_packet(build_packet(tcp_spec(10, false), 0));
  EXPECT_EQ(classify_spurious(*app.parsed), SpuriousCategory::None);

  // NTP -> network time.
  llmnr.udp->dst_port = 123;
  auto ntp = parse_packet(build_packet(llmnr, 0));
  EXPECT_EQ(classify_spurious(*ntp.parsed), SpuriousCategory::NetworkTime);
}

}  // namespace
}  // namespace sugar::net
