#include <gtest/gtest.h>

#include <random>

#include "net/checksum.h"
#include "net/mutate.h"
#include "net/parser.h"
#include "net/serializer.h"

namespace sugar::net {
namespace {

Packet sample_tcp_packet() {
  FrameSpec spec;
  Ipv4Header ip;
  ip.src = Ipv4Address::from_octets(192, 168, 0, 5);
  ip.dst = Ipv4Address::from_octets(104, 16, 8, 7);
  spec.ipv4 = ip;
  TcpHeader tcp;
  tcp.src_port = 50123;
  tcp.dst_port = 443;
  tcp.seq = 0x11111111;
  tcp.ack = 0x22222222;
  tcp.ack_flag = true;
  tcp.options.timestamp = {{0xAAAAAAAA, 0xBBBBBBBB}};
  tcp.options.mss = 1460;
  spec.tcp = tcp;
  spec.payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x42};
  return build_packet(spec, 77);
}

/// The invariant every mutation must preserve: the frame still parses and
/// all checksums verify.
void expect_consistent(const Packet& pkt) {
  auto outcome = parse_packet(pkt);
  ASSERT_TRUE(outcome.ok());
  const auto& p = *outcome.parsed;
  if (p.ipv4) {
    auto hdr = std::span{pkt.data}.subspan(p.l3_offset, p.ipv4->header_len());
    EXPECT_EQ(checksum(hdr), 0) << "IP checksum broken";
  }
  if (p.tcp && p.ipv4) {
    auto seg = std::span{pkt.data}.subspan(p.l4_offset);
    EXPECT_EQ(l4_checksum_v4(p.ipv4->src, p.ipv4->dst, 6, seg), 0)
        << "TCP checksum broken";
  }
}

TEST(Mutate, RandomizeSeqAckChangesOnlySeqAck) {
  Packet pkt = sample_tcp_packet();
  auto before = *parse_packet(pkt).parsed;
  std::mt19937_64 rng(1);
  ASSERT_TRUE(randomize_seq_ack(pkt, rng));
  auto after = *parse_packet(pkt).parsed;

  EXPECT_NE(after.tcp->seq, before.tcp->seq);
  EXPECT_NE(after.tcp->ack, before.tcp->ack);
  EXPECT_EQ(after.tcp->src_port, before.tcp->src_port);
  EXPECT_EQ(after.tcp->window, before.tcp->window);
  EXPECT_EQ(after.ipv4->src, before.ipv4->src);
  EXPECT_EQ(after.tcp->options.timestamp, before.tcp->options.timestamp);
  expect_consistent(pkt);
}

TEST(Mutate, RandomizeTimestampChangesOnlyTimestamps) {
  Packet pkt = sample_tcp_packet();
  auto before = *parse_packet(pkt).parsed;
  std::mt19937_64 rng(2);
  ASSERT_TRUE(randomize_tcp_timestamp(pkt, rng));
  auto after = *parse_packet(pkt).parsed;

  EXPECT_NE(after.tcp->options.timestamp, before.tcp->options.timestamp);
  EXPECT_EQ(after.tcp->seq, before.tcp->seq);
  EXPECT_EQ(*after.tcp->options.mss, 1460);
  expect_consistent(pkt);
}

TEST(Mutate, TimestampAbsentReturnsFalse) {
  FrameSpec spec;
  Ipv4Header ip;
  ip.src = Ipv4Address::from_octets(1, 2, 3, 4);
  ip.dst = Ipv4Address::from_octets(5, 6, 7, 8);
  spec.ipv4 = ip;
  TcpHeader tcp;
  tcp.src_port = 1;
  tcp.dst_port = 2;
  spec.tcp = tcp;
  Packet pkt = build_packet(spec, 0);
  std::mt19937_64 rng(3);
  EXPECT_FALSE(randomize_tcp_timestamp(pkt, rng));
}

TEST(Mutate, ZeroIpAddresses) {
  Packet pkt = sample_tcp_packet();
  ASSERT_TRUE(zero_ip_addresses(pkt));
  auto p = *parse_packet(pkt).parsed;
  EXPECT_EQ(p.ipv4->src.value, 0u);
  EXPECT_EQ(p.ipv4->dst.value, 0u);
  expect_consistent(pkt);
}

TEST(Mutate, RandomizeIpAddresses) {
  Packet pkt = sample_tcp_packet();
  std::mt19937_64 rng(4);
  ASSERT_TRUE(randomize_ip_addresses(pkt, rng));
  auto p = *parse_packet(pkt).parsed;
  EXPECT_NE(p.ipv4->src, Ipv4Address::from_octets(192, 168, 0, 5));
  expect_consistent(pkt);
}

TEST(Mutate, ZeroPorts) {
  Packet pkt = sample_tcp_packet();
  ASSERT_TRUE(zero_ports(pkt));
  auto p = *parse_packet(pkt).parsed;
  EXPECT_EQ(*p.src_port(), 0);
  EXPECT_EQ(*p.dst_port(), 0);
  expect_consistent(pkt);
}

TEST(Mutate, ZeroPayloadKeepsLength) {
  Packet pkt = sample_tcp_packet();
  std::size_t len_before = pkt.data.size();
  ASSERT_TRUE(zero_payload(pkt));
  EXPECT_EQ(pkt.data.size(), len_before);
  auto p = *parse_packet(pkt).parsed;
  auto payload = p.payload_view(pkt);
  for (auto b : payload) EXPECT_EQ(b, 0);
  expect_consistent(pkt);
}

TEST(Mutate, StripPayloadTruncatesAndFixesLengths) {
  Packet pkt = sample_tcp_packet();
  ASSERT_TRUE(strip_payload(pkt));
  auto outcome = parse_packet(pkt);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.parsed->payload_len, 0u);
  EXPECT_EQ(outcome.parsed->ipv4->total_length,
            pkt.data.size() - EthernetHeader::kSize);
  expect_consistent(pkt);
}

TEST(Mutate, ZeroHeadersKeepsPayloadBytes) {
  Packet pkt = sample_tcp_packet();
  auto before = *parse_packet(pkt).parsed;
  std::size_t payload_off = before.payload_offset;
  ASSERT_TRUE(zero_headers(pkt));
  // Header region zeroed...
  for (std::size_t i = before.l3_offset; i < payload_off; ++i)
    EXPECT_EQ(pkt.data[i], 0) << "at " << i;
  // ...payload untouched.
  EXPECT_EQ(pkt.data[payload_off], 0xDE);
  EXPECT_EQ(pkt.data[payload_off + 4], 0x42);
}

TEST(Mutate, JitterTtlStaysBoundedAndConsistent) {
  std::mt19937_64 rng(6);
  for (int i = 0; i < 200; ++i) {
    Packet pkt = sample_tcp_packet();
    ASSERT_TRUE(jitter_ttl(pkt, 8, rng));
    auto p = *parse_packet(pkt).parsed;
    EXPECT_GE(p.ipv4->ttl, 64 - 8);
    EXPECT_LE(p.ipv4->ttl, 64 + 8);
    EXPECT_GE(p.ipv4->ttl, 1);
    expect_consistent(pkt);
  }
  // Deterministic: same seed, same delta sequence.
  std::mt19937_64 a(7), b(7);
  Packet pa = sample_tcp_packet(), pb = sample_tcp_packet();
  ASSERT_TRUE(jitter_ttl(pa, 8, a));
  ASSERT_TRUE(jitter_ttl(pb, 8, b));
  EXPECT_EQ(pa.data, pb.data);
  // max_delta <= 0 is a no-op draw-wise and leaves the field unchanged.
  Packet pz = sample_tcp_packet();
  std::mt19937_64 z(8);
  ASSERT_TRUE(jitter_ttl(pz, 0, z));
  EXPECT_EQ(parse_packet(pz).parsed->ipv4->ttl, 64);
}

TEST(Mutate, JitterWindowChangesOnlyWindow) {
  Packet pkt = sample_tcp_packet();
  auto before = *parse_packet(pkt).parsed;
  std::mt19937_64 rng(9);
  bool changed = false;
  for (int i = 0; i < 20 && !changed; ++i) {
    ASSERT_TRUE(jitter_tcp_window(pkt, 4096, rng));
    changed = parse_packet(pkt).parsed->tcp->window != before.tcp->window;
  }
  EXPECT_TRUE(changed);
  auto after = *parse_packet(pkt).parsed;
  EXPECT_GE(after.tcp->window, 1);
  EXPECT_EQ(after.tcp->seq, before.tcp->seq);
  EXPECT_EQ(after.tcp->src_port, before.tcp->src_port);
  EXPECT_EQ(after.ipv4->src, before.ipv4->src);
  EXPECT_EQ(after.tcp->options.mss, before.tcp->options.mss);
  expect_consistent(pkt);
}

TEST(Mutate, JitterMssStaysInClampAndPreservesOptions) {
  std::mt19937_64 rng(10);
  bool changed = false;
  for (int i = 0; i < 50; ++i) {
    Packet pkt = sample_tcp_packet();
    ASSERT_TRUE(jitter_tcp_mss(pkt, 120, rng));
    auto p = *parse_packet(pkt).parsed;
    ASSERT_TRUE(p.tcp->options.mss.has_value());
    EXPECT_GE(*p.tcp->options.mss, 1460 - 120);
    EXPECT_LE(*p.tcp->options.mss, 1460 + 120);
    EXPECT_EQ(p.tcp->options.timestamp,
              (std::optional<std::pair<std::uint32_t, std::uint32_t>>{
                  {0xAAAAAAAA, 0xBBBBBBBB}}));
    if (*p.tcp->options.mss != 1460) changed = true;
    expect_consistent(pkt);
  }
  EXPECT_TRUE(changed);
}

TEST(Mutate, JitterAbsentFieldsReturnFalse) {
  std::mt19937_64 rng(11);
  // No MSS option: jitter_tcp_mss must refuse.
  FrameSpec spec;
  Ipv4Header ip;
  ip.src = Ipv4Address::from_octets(1, 2, 3, 4);
  ip.dst = Ipv4Address::from_octets(5, 6, 7, 8);
  spec.ipv4 = ip;
  TcpHeader tcp;
  tcp.src_port = 1;
  tcp.dst_port = 2;
  spec.tcp = tcp;
  Packet no_mss = build_packet(spec, 0);
  EXPECT_FALSE(jitter_tcp_mss(no_mss, 120, rng));
  // Non-IP frame: no TTL, no window.
  FrameSpec arp_spec;
  arp_spec.arp = ArpHeader{};
  Packet arp = build_packet(arp_spec, 0);
  EXPECT_FALSE(jitter_ttl(arp, 8, rng));
  EXPECT_FALSE(jitter_tcp_window(arp, 4096, rng));
}

TEST(Mutate, NonTcpRefusals) {
  FrameSpec spec;
  spec.arp = ArpHeader{};
  Packet arp = build_packet(spec, 0);
  std::mt19937_64 rng(5);
  EXPECT_FALSE(randomize_seq_ack(arp, rng));
  EXPECT_FALSE(zero_ports(arp));
  EXPECT_FALSE(zero_ip_addresses(arp));
}

}  // namespace
}  // namespace sugar::net
