// google-benchmark microbenchmarks for the substrate: parser, serializer,
// checksum, flow assembly, split, featurization, pcap I/O throughput, and
// the parallel compute kernels (legacy vs blocked GEMM, forest fit, k-NN).
//
// Invoked as `bench_micro_substrate --substrate-compare <out.json>` it
// instead runs the deterministic sequential-vs-parallel comparison used by
// the perf_smoke ctest label: every kernel at SUGAR_THREADS=1 and =4 with
// bit-identical-output verification, speedups recorded in the artifact
// (speedup is reported, not gated — determinism is the hard requirement).
//
// `--simd-compare <out.json>` runs the scalar-reference vs core::simd
// comparison instead: each vector kernel must reproduce its no-vectorize
// scalar spec to the bit, with GFLOP/s and GB/s recorded (schema 3).
//
// `--trace-compare <out.json>` gates the observability substrate's
// zero-interference contract: every kernel runs once with SUGAR_TRACE off
// and once at the maximal `spans` mode, and the bit-exact output digests
// must match — tracing observes computation, it never perturbs it.
//
// `--tree-compare <out.json>` compares tree training engines on a smoke
// dataset: the legacy per-node binary-search binning (per-tree
// compute_cuts) vs the quantize-once ml::BinnedMatrix histogram path, at
// SUGAR_THREADS=1. Speedup and accuracy delta are recorded; the hard gate
// is that the binned fit digests are bit-identical at SUGAR_THREADS=1/2/7.
//
// `--ooc-compare <out.json>` gates the out-of-core substrate: a synthetic
// code store larger than the page-cache budget is fit fully resident
// (ResidentCodeSource) and paged (PagedCodeSource in a child process with
// SUGAR_PAGE_CACHE_MB pinned small), at SUGAR_THREADS=1/2/7 each. Hard
// gates: all six model digests bit-identical, and every paged child's
// peak RSS stays below the dataset payload size — proof the fit streamed
// instead of materializing. `--ooc-fit <store>` is the internal child
// mode (opens the store, fits, prints one JSON line of evidence).
#include <benchmark/benchmark.h>

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <numeric>
#include <random>
#include <sstream>

#include "core/artifact.h"
#include "core/pager.h"
#include "dataset/store.h"
#include "core/simd.h"
#include "core/threadpool.h"
#include "core/trace.h"
#include "dataset/split.h"
#include "dataset/task.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/knn.h"
#include "ml/matrix.h"
#include "ml/metrics.h"
#include "net/checksum.h"
#include "net/flow.h"
#include "net/mutate.h"
#include "net/parser.h"
#include "net/pcap.h"
#include "replearn/featurize.h"
#include "trafficgen/datasets.h"

using namespace sugar;

namespace {

std::vector<net::Packet> sample_trace(std::size_t flows = 60) {
  trafficgen::GenOptions opts;
  opts.seed = 42;
  opts.flows_per_class = flows / 16 + 1;
  return trafficgen::generate_iscx_vpn(opts).packets;
}

const std::vector<net::Packet>& cached_trace() {
  static const std::vector<net::Packet> trace = sample_trace();
  return trace;
}

void BM_ParsePacket(benchmark::State& state) {
  const auto& trace = cached_trace();
  std::size_t i = 0, bytes = 0;
  for (auto _ : state) {
    auto outcome = net::parse_packet(trace[i % trace.size()]);
    benchmark::DoNotOptimize(outcome);
    bytes += trace[i % trace.size()].data.size();
    ++i;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ParsePacket);

void BM_Checksum1500(benchmark::State& state) {
  std::vector<std::uint8_t> buf(1500, 0xA5);
  std::size_t bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::checksum(buf));
    bytes += buf.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Checksum1500);

void BM_GenerateFlow(benchmark::State& state) {
  auto profiles = trafficgen::iscx_vpn_profiles();
  trafficgen::Rng rng(7);
  std::size_t packets = 0;
  for (auto _ : state) {
    auto pkts = trafficgen::generate_flow(profiles[2], false, rng, 0);
    packets += pkts.size();
    benchmark::DoNotOptimize(pkts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(packets));
}
BENCHMARK(BM_GenerateFlow);

void BM_FlowAssembly(benchmark::State& state) {
  const auto& trace = cached_trace();
  for (auto _ : state) {
    auto table = net::assemble_flows(trace);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_FlowAssembly);

void BM_RandomizeSeqAck(benchmark::State& state) {
  auto trace = cached_trace();
  std::mt19937_64 rng(3);
  std::size_t i = 0;
  for (auto _ : state) {
    net::randomize_seq_ack(trace[i % trace.size()], rng);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RandomizeSeqAck);

void BM_PcapRoundTrip(benchmark::State& state) {
  const auto& trace = cached_trace();
  for (auto _ : state) {
    std::stringstream ss;
    {
      net::PcapWriter writer(ss);
      writer.write_all(trace);
    }
    net::PcapReader reader(ss);
    auto back = reader.read_all();
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_PcapRoundTrip);

void BM_HeaderFeaturize(benchmark::State& state) {
  trafficgen::GenOptions opts;
  opts.seed = 9;
  opts.flows_per_class = 2;
  auto trace = trafficgen::generate_iscx_vpn(opts);
  auto ds = dataset::make_task_dataset(trace, dataset::TaskId::VpnApp);
  std::vector<std::size_t> idx(ds.size());
  std::iota(idx.begin(), idx.end(), 0);
  for (auto _ : state) {
    auto x = replearn::header_feature_matrix(ds, idx, {});
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ds.size()));
}
BENCHMARK(BM_HeaderFeaturize);

// ---- Parallel compute kernels -------------------------------------------

ml::Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  ml::Matrix m(rows, cols);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto& v : m.data()) v = dist(rng);
  return m;
}

/// The pre-substrate matmul, kept verbatim for comparison: single-threaded
/// ikj with the `aik == 0.0f` branch-skip that the blocked kernel dropped
/// (on dense floats the branch is a mispredict tax, not an optimization).
ml::Matrix legacy_branchy_matmul(const ml::Matrix& a, const ml::Matrix& b) {
  ml::Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      float aik = ai[k];
      if (aik == 0.0f) continue;
      const float* bk = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) ci[j] += aik * bk[j];
    }
  }
  return c;
}

void BM_MatmulLegacyBranchy(benchmark::State& state) {
  auto a = random_matrix(160, 128, 21);
  auto b = random_matrix(128, 96, 22);
  for (auto _ : state) {
    auto c = legacy_branchy_matmul(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.rows() * a.cols() * b.cols()));
}
BENCHMARK(BM_MatmulLegacyBranchy);

void BM_MatmulBlockedSeq(benchmark::State& state) {
  core::set_global_threads(1);
  auto a = random_matrix(160, 128, 21);
  auto b = random_matrix(128, 96, 22);
  for (auto _ : state) {
    auto c = ml::matmul(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.rows() * a.cols() * b.cols()));
  core::set_global_threads(0);
}
BENCHMARK(BM_MatmulBlockedSeq);

void BM_MatmulBlockedPar(benchmark::State& state) {
  core::set_global_threads(0);  // SUGAR_THREADS / hardware_concurrency
  auto a = random_matrix(160, 128, 21);
  auto b = random_matrix(128, 96, 22);
  for (auto _ : state) {
    auto c = ml::matmul(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.rows() * a.cols() * b.cols()));
}
BENCHMARK(BM_MatmulBlockedPar);

void BM_ForestFitSeq(benchmark::State& state) {
  core::set_global_threads(1);
  auto x = random_matrix(300, 16, 31);
  std::vector<int> y(x.rows());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 5);
  for (auto _ : state) {
    ml::ForestConfig fc;
    fc.num_trees = 16;
    ml::RandomForest rf(fc);
    rf.fit(x, y, 5);
    benchmark::DoNotOptimize(rf);
  }
  core::set_global_threads(0);
}
BENCHMARK(BM_ForestFitSeq);

void BM_ForestFitPar(benchmark::State& state) {
  core::set_global_threads(0);
  auto x = random_matrix(300, 16, 31);
  std::vector<int> y(x.rows());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 5);
  for (auto _ : state) {
    ml::ForestConfig fc;
    fc.num_trees = 16;
    ml::RandomForest rf(fc);
    rf.fit(x, y, 5);
    benchmark::DoNotOptimize(rf);
  }
}
BENCHMARK(BM_ForestFitPar);

void BM_KnnPurity(benchmark::State& state) {
  auto e = random_matrix(400, 24, 41);
  std::vector<int> labels(e.rows());
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<int>(i % 6);
  for (auto _ : state) {
    auto p = ml::knn_purity(e, labels, 5);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(e.rows() * e.rows()));
}
BENCHMARK(BM_KnnPurity);

void BM_PerFlowSplit(benchmark::State& state) {
  trafficgen::GenOptions opts;
  opts.seed = 9;
  opts.flows_per_class = 4;
  auto trace = trafficgen::generate_iscx_vpn(opts);
  auto ds = dataset::make_task_dataset(trace, dataset::TaskId::VpnApp);
  for (auto _ : state) {
    dataset::SplitOptions so;
    so.policy = dataset::SplitPolicy::PerFlow;
    auto split = dataset::split_dataset(ds, so);
    benchmark::DoNotOptimize(split);
  }
}
BENCHMARK(BM_PerFlowSplit);

// ---- --substrate-compare: deterministic seq-vs-par verification ---------

/// Bit-exact digest of a float buffer (the raw bytes, so -0.0f vs +0.0f or
/// any last-ulp drift is caught). Templated over the allocator so it takes
/// both std::vector<float> and ml::Matrix's aligned FloatBuffer.
template <typename Alloc>
std::string digest_floats(const std::vector<float, Alloc>& v) {
  return core::hex64(core::fnv1a64(std::string_view(
      reinterpret_cast<const char*>(v.data()), v.size() * sizeof(float))));
}

std::string digest_ints(const std::vector<int>& v) {
  return core::hex64(core::fnv1a64(std::string_view(
      reinterpret_cast<const char*>(v.data()), v.size() * sizeof(int))));
}

std::string digest_doubles(const std::vector<double>& v) {
  return core::hex64(core::fnv1a64(std::string_view(
      reinterpret_cast<const char*>(v.data()), v.size() * sizeof(double))));
}

struct CompareCase {
  std::string kernel;
  // Runs the kernel once and returns a bit-exact digest of its output.
  std::function<std::string()> run;
};

/// Wall-clock of the fastest of `reps` runs (min filters scheduler noise).
template <typename Fn>
double best_seconds(int reps, const Fn& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                   .count();
    if (s < best) best = s;
  }
  return best;
}

int run_substrate_compare(const std::string& path) {
  constexpr std::size_t kSeqThreads = 1, kParThreads = 4;
  constexpr int kReps = 3;

  // Shared inputs, deterministic across both thread counts.
  auto a = random_matrix(224, 192, 101);
  auto b = random_matrix(192, 160, 102);
  auto at = random_matrix(192, 224, 103);  // for matmul_tn (same row count as b')
  auto bt = random_matrix(192, 160, 104);
  auto x = random_matrix(420, 20, 105);
  std::vector<int> y(x.rows());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 5);
  auto emb = random_matrix(360, 24, 106);
  std::vector<int> labels(emb.rows());
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<int>(i % 6);

  std::vector<CompareCase> cases;
  cases.push_back({"matmul", [&] { return digest_floats(ml::matmul(a, b).data()); }});
  cases.push_back(
      {"matmul_tn", [&] { return digest_floats(ml::matmul_tn(at, bt).data()); }});
  cases.push_back(
      {"matmul_nt", [&] { return digest_floats(ml::matmul_nt(a, a).data()); }});
  cases.push_back({"forest_fit", [&] {
                     ml::ForestConfig fc;
                     fc.num_trees = 24;
                     ml::RandomForest rf(fc);
                     rf.fit(x, y, 5);
                     auto pred = rf.predict(x);
                     auto imp = rf.feature_importance();
                     return digest_ints(pred) + "/" + digest_doubles(imp);
                   }});
  cases.push_back({"knn_purity", [&] {
                     auto p = ml::knn_purity(emb, labels, 5);
                     auto h = p.histogram;
                     h.push_back(p.mean_purity);
                     return digest_doubles(h);
                   }});

  core::Json doc = core::Json::object();
  doc.set("schema_version", core::Json(1));
  doc.set("bench", core::Json("micro_substrate_compare"));
  doc.set("threads_seq", core::Json(kSeqThreads));
  doc.set("threads_par", core::Json(kParThreads));
  doc.set("hardware_concurrency",
          core::Json(static_cast<std::size_t>(std::thread::hardware_concurrency())));
  core::Json arr = core::Json::array();

  bool all_identical = true;
  for (auto& c : cases) {
    core::set_global_threads(kSeqThreads);
    std::string d_seq = c.run();  // warm (and digest) before timing
    double t_seq = best_seconds(kReps, c.run);
    core::set_global_threads(kParThreads);
    std::string d_par = c.run();
    double t_par = best_seconds(kReps, c.run);
    bool identical = d_seq == d_par;
    all_identical = all_identical && identical;

    core::Json row = core::Json::object();
    row.set("kernel", core::Json(c.kernel));
    row.set("seq_seconds", core::Json(t_seq));
    row.set("par_seconds", core::Json(t_par));
    row.set("speedup", core::Json(t_par > 0 ? t_seq / t_par : 0.0));
    row.set("digest_seq", core::Json(d_seq));
    row.set("digest_par", core::Json(d_par));
    row.set("identical", core::Json(identical));
    arr.push(row);
    std::printf("%-12s seq %.4fs  par(%zu) %.4fs  speedup %.2fx  %s\n",
                c.kernel.c_str(), t_seq, kParThreads, t_par,
                t_par > 0 ? t_seq / t_par : 0.0,
                identical ? "bit-identical" : "OUTPUT MISMATCH");
  }
  core::set_global_threads(0);  // restore SUGAR_THREADS / hardware default

  doc.set("cases", arr);
  doc.set("all_identical", core::Json(all_identical));
  std::string err;
  if (!core::atomic_write_file(path, doc.dump(2) + "\n", &err)) {
    std::fprintf(stderr, "substrate-compare: artifact write failed: %s\n",
                 err.c_str());
    return 1;
  }
  std::printf("Artifact: %s\n", path.c_str());
  if (!all_identical) {
    std::fprintf(stderr,
                 "substrate-compare: parallel output differs from sequential — "
                 "determinism contract violated\n");
    return 1;
  }
  return 0;
}

// ---- --simd-compare: scalar-reference vs core::simd verification --------
//
// The scalar references below are the determinism SPEC written as plain
// scalar code: k-ascending GEMM accumulation and the strided-8 blocked
// reduction from core/simd.h. The vectorized kernels must reproduce them
// to the bit — that identity is the gate. Throughput (GFLOP/s and GB/s)
// is reported, not gated: the required >= 2x GEMM speedup only appears on
// real vector hardware, not under SUGAR_SIMD_FORCE_SCALAR.
//
// GCC auto-vectorizes plain loops at -O2, which would turn the "scalar"
// baseline into SIMD and hide the speedup — so the references are compiled
// with the tree-vectorizer off where the attribute exists.
#if defined(__GNUC__) && !defined(__clang__)
#define SUGAR_SCALAR_REF __attribute__((optimize("no-tree-vectorize")))
#else
#define SUGAR_SCALAR_REF
#endif

SUGAR_SCALAR_REF void scalar_gemm(const ml::Matrix& a, const ml::Matrix& b,
                                  ml::Matrix& c) {
  c.reshape(a.rows(), b.cols());
  c.fill(0.0f);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      float aik = ai[k];
      const float* bk = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) ci[j] += aik * bk[j];
    }
  }
}

SUGAR_SCALAR_REF void scalar_axpy(float* dst, const float* src, float a,
                                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += a * src[i];
}

SUGAR_SCALAR_REF void scalar_relu(ml::Matrix& m, ml::Matrix& mask) {
  mask.reshape(m.rows(), m.cols());
  float* v = m.data().data();
  float* mk = mask.data().data();
  for (std::size_t i = 0; i < m.size(); ++i) {
    mk[i] = v[i] > 0.0f ? 1.0f : 0.0f;
    v[i] = v[i] > 0.0f ? v[i] : 0.0f;
  }
}

SUGAR_SCALAR_REF float scalar_strided_max(const float* a, std::size_t n) {
  if (n < 8) {
    float m = a[0];
    for (std::size_t i = 1; i < n; ++i) m = a[i] > m ? a[i] : m;
    return m;
  }
  float lanes[8];
  for (std::size_t l = 0; l < 8; ++l) lanes[l] = a[l];
  std::size_t i = 8;
  for (; i + 8 <= n; i += 8)
    for (std::size_t l = 0; l < 8; ++l)
      lanes[l] = a[i + l] > lanes[l] ? a[i + l] : lanes[l];
  for (std::size_t t = i; t < n; ++t)
    lanes[t - i] = a[t] > lanes[t - i] ? a[t] : lanes[t - i];
  return core::simd::reduce8_max(lanes);
}

SUGAR_SCALAR_REF float scalar_strided_sum(const float* a, std::size_t n) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    for (std::size_t l = 0; l < 8; ++l) lanes[l] += a[i + l];
  for (std::size_t t = i; t < n; ++t) lanes[t - i] += a[t];
  return core::simd::reduce8(lanes);
}

SUGAR_SCALAR_REF void scalar_softmax(ml::Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float* r = m.row(i);
    const std::size_t n = m.cols();
    float mx = scalar_strided_max(r, n);
    for (std::size_t j = 0; j < n; ++j) r[j] = std::exp(r[j] - mx);
    float inv = 1.0f / scalar_strided_sum(r, n);
    for (std::size_t j = 0; j < n; ++j) r[j] *= inv;
  }
}

SUGAR_SCALAR_REF float scalar_sqdist(const float* a, const float* b,
                                     std::size_t n) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    for (std::size_t l = 0; l < 8; ++l) {
      float d = a[i + l] - b[i + l];
      lanes[l] += d * d;
    }
  for (std::size_t t = i; t < n; ++t) {
    float d = a[t] - b[t];
    lanes[t - i] += d * d;
  }
  return core::simd::reduce8(lanes);
}

struct SimdCase {
  std::string kernel;
  double flops;  // arithmetic work of one run (0 when not meaningful)
  double bytes;  // memory traffic of one run
  std::function<std::string()> run_scalar;
  std::function<std::string()> run_simd;
};

int run_simd_compare(const std::string& path) {
  constexpr int kReps = 5;
  core::set_global_threads(1);  // kernel-only comparison, no thread effects

  auto a = random_matrix(256, 256, 201);
  auto b = random_matrix(256, 256, 202);
  const std::size_t kElems = 1u << 20;
  auto u = random_matrix(1, kElems, 203);
  auto v = random_matrix(1, kElems, 204);
  auto soft = random_matrix(512, 203, 205);  // odd cols: exercises the tail
  ml::Matrix scratch, scratch2, mask;

  auto digest_one = [](float x) {
    return core::hex64(core::fnv1a64(
        std::string_view(reinterpret_cast<const char*>(&x), sizeof x)));
  };

  std::vector<SimdCase> cases;
  const double gemm_flops = 2.0 * 256 * 256 * 256;
  const double gemm_bytes = 4.0 * (256.0 * 256 * 3);
  cases.push_back({"gemm", gemm_flops, gemm_bytes,
                   [&] {
                     scalar_gemm(a, b, scratch);
                     return digest_floats(scratch.data());
                   },
                   [&] {
                     ml::matmul_into(a, b, scratch2);
                     return digest_floats(scratch2.data());
                   }});
  cases.push_back({"axpy", 2.0 * kElems, 4.0 * kElems * 3,
                   [&] {
                     scratch.copy_from(u);
                     scalar_axpy(scratch.data().data(), v.data().data(), 1.25f,
                                 kElems);
                     return digest_floats(scratch.data());
                   },
                   [&] {
                     scratch2.copy_from(u);
                     core::simd::axpy(scratch2.data().data(), v.data().data(),
                                      1.25f, kElems);
                     return digest_floats(scratch2.data());
                   }});
  cases.push_back({"relu", 0.0, 4.0 * kElems * 3,
                   [&] {
                     scratch.copy_from(u);
                     scalar_relu(scratch, mask);
                     return digest_floats(scratch.data()) +
                            digest_floats(mask.data());
                   },
                   [&] {
                     scratch2.copy_from(u);
                     ml::relu_inplace_into(scratch2, mask);
                     return digest_floats(scratch2.data()) +
                            digest_floats(mask.data());
                   }});
  const double soft_elems = 512.0 * 203;
  cases.push_back({"softmax_rows", 4.0 * soft_elems, 4.0 * soft_elems * 4,
                   [&] {
                     scratch.copy_from(soft);
                     scalar_softmax(scratch);
                     return digest_floats(scratch.data());
                   },
                   [&] {
                     scratch2.copy_from(soft);
                     ml::softmax_rows(scratch2);
                     return digest_floats(scratch2.data());
                   }});
  cases.push_back({"squared_distance", 3.0 * kElems, 4.0 * kElems * 2,
                   [&] {
                     return digest_one(scalar_sqdist(u.data().data(),
                                                     v.data().data(), kElems));
                   },
                   [&] {
                     return digest_one(ml::squared_distance(
                         u.data().data(), v.data().data(), kElems));
                   }});

  core::Json doc = core::Json::object();
  doc.set("schema_version", core::Json(3));
  doc.set("bench", core::Json("micro_substrate_simd"));
  doc.set("simd_backend", core::Json(core::simd::backend_name()));
  doc.set("threads", core::Json(std::size_t{1}));
  core::Json arr = core::Json::array();

  bool all_identical = true;
  for (auto& c : cases) {
    std::string d_scalar = c.run_scalar();  // warm before timing
    double t_scalar = best_seconds(kReps, c.run_scalar);
    std::string d_simd = c.run_simd();
    double t_simd = best_seconds(kReps, c.run_simd);
    bool identical = d_scalar == d_simd;
    all_identical = all_identical && identical;
    double gflops = (c.flops > 0 && t_simd > 0) ? c.flops / t_simd / 1e9 : 0.0;
    double bps = t_simd > 0 ? c.bytes / t_simd : 0.0;

    core::Json row = core::Json::object();
    row.set("kernel", core::Json(c.kernel));
    row.set("scalar_seconds", core::Json(t_scalar));
    row.set("simd_seconds", core::Json(t_simd));
    row.set("speedup", core::Json(t_simd > 0 ? t_scalar / t_simd : 0.0));
    row.set("flops", core::Json(c.flops));
    row.set("bytes", core::Json(c.bytes));
    row.set("gflops", core::Json(gflops));
    row.set("bytes_per_s", core::Json(bps));
    row.set("digest_scalar", core::Json(d_scalar));
    row.set("digest_simd", core::Json(d_simd));
    row.set("identical", core::Json(identical));
    arr.push(row);
    std::printf(
        "%-18s scalar %.5fs  simd(%s) %.5fs  speedup %.2fx  %.2f GFLOP/s  "
        "%.2f GB/s  %s\n",
        c.kernel.c_str(), t_scalar, core::simd::backend_name(), t_simd,
        t_simd > 0 ? t_scalar / t_simd : 0.0, gflops, bps / 1e9,
        identical ? "bit-identical" : "OUTPUT MISMATCH");
  }
  core::set_global_threads(0);

  doc.set("cases", arr);
  doc.set("all_identical", core::Json(all_identical));
  std::string err;
  if (!core::atomic_write_file(path, doc.dump(2) + "\n", &err)) {
    std::fprintf(stderr, "simd-compare: artifact write failed: %s\n",
                 err.c_str());
    return 1;
  }
  std::printf("Artifact: %s\n", path.c_str());
  if (!all_identical) {
    std::fprintf(stderr,
                 "simd-compare: vectorized output differs from the scalar "
                 "reference — determinism contract violated\n");
    return 1;
  }
  return 0;
}

// ---- --trace-compare: trace-off vs trace-spans identity -----------------
//
// The observability substrate's hard contract: SUGAR_TRACE changes what is
// *recorded*, never what is *computed*. Each kernel runs with tracing off
// and again at the maximal `spans` mode (through the same instrumented code
// paths — ml.gemm_flops counters, ml.forest.fit / ml.knn.purity spans, the
// pcap.* ingest counters) and the raw output bytes must digest identically.
// The off/spans wall-clock ratio is reported as `speedup` so overhead is
// visible in the BENCH trajectory, but only identity is gated.

std::string digest_packets(const std::vector<net::Packet>& pkts) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis, chained
  for (const auto& p : pkts) {
    h ^= core::fnv1a64(std::string_view(
        reinterpret_cast<const char*>(p.data.data()), p.data.size()));
    h *= 1099511628211ull;
  }
  return core::hex64(h);
}

int run_trace_compare(const std::string& path) {
  constexpr int kReps = 3;
  // Fixed pool width: the comparison must isolate the trace mode, so both
  // runs share the same deterministic block structure.
  core::set_global_threads(2);

  auto a = random_matrix(224, 192, 301);
  auto b = random_matrix(192, 160, 302);
  auto x = random_matrix(420, 20, 303);
  std::vector<int> y(x.rows());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 5);
  auto emb = random_matrix(360, 24, 304);
  std::vector<int> labels(emb.rows());
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<int>(i % 6);
  const auto& trace_pkts = cached_trace();

  std::vector<CompareCase> cases;
  cases.push_back({"matmul", [&] { return digest_floats(ml::matmul(a, b).data()); }});
  cases.push_back({"forest_fit", [&] {
                     ml::ForestConfig fc;
                     fc.num_trees = 24;
                     ml::RandomForest rf(fc);
                     rf.fit(x, y, 5);
                     auto pred = rf.predict(x);
                     auto imp = rf.feature_importance();
                     return digest_ints(pred) + "/" + digest_doubles(imp);
                   }});
  cases.push_back({"knn_purity", [&] {
                     auto p = ml::knn_purity(emb, labels, 5);
                     auto h = p.histogram;
                     h.push_back(p.mean_purity);
                     return digest_doubles(h);
                   }});
  cases.push_back({"pcap_roundtrip", [&] {
                     std::stringstream ss;
                     {
                       net::PcapWriter writer(ss);
                       writer.write_all(trace_pkts);
                     }
                     net::PcapReader reader(ss);
                     return digest_packets(reader.read_all());
                   }});

  core::Json doc = core::Json::object();
  doc.set("schema_version", core::Json(1));
  doc.set("bench", core::Json("micro_substrate_trace"));
  doc.set("threads", core::Json(std::size_t{2}));
  core::Json arr = core::Json::array();

  bool all_identical = true;
  for (auto& c : cases) {
    core::trace::set_mode(core::trace::Mode::kOff);
    std::string d_off = c.run();  // warm (and digest) before timing
    double t_off = best_seconds(kReps, c.run);
    core::trace::reset();
    core::trace::set_mode(core::trace::Mode::kSpans);
    std::string d_spans = c.run();
    double t_spans = best_seconds(kReps, c.run);
    core::trace::set_mode(core::trace::Mode::kOff);
    bool identical = d_off == d_spans;
    all_identical = all_identical && identical;

    core::Json row = core::Json::object();
    row.set("kernel", core::Json(c.kernel));
    row.set("off_seconds", core::Json(t_off));
    row.set("spans_seconds", core::Json(t_spans));
    row.set("speedup", core::Json(t_off > 0 ? t_spans / t_off : 0.0));
    row.set("digest_off", core::Json(d_off));
    row.set("digest_spans", core::Json(d_spans));
    row.set("identical", core::Json(identical));
    arr.push(row);
    std::printf("%-15s off %.4fs  spans %.4fs  overhead %.2fx  %s\n",
                c.kernel.c_str(), t_off, t_spans,
                t_off > 0 ? t_spans / t_off : 0.0,
                identical ? "bit-identical" : "OUTPUT MISMATCH");
  }
  core::trace::reset();
  core::set_global_threads(0);  // restore SUGAR_THREADS / hardware default

  doc.set("cases", arr);
  doc.set("all_identical", core::Json(all_identical));
  std::string err;
  if (!core::atomic_write_file(path, doc.dump(2) + "\n", &err)) {
    std::fprintf(stderr, "trace-compare: artifact write failed: %s\n",
                 err.c_str());
    return 1;
  }
  std::printf("Artifact: %s\n", path.c_str());
  if (!all_identical) {
    std::fprintf(stderr,
                 "trace-compare: traced output differs from untraced — "
                 "observability perturbed the computation\n");
    return 1;
  }
  return 0;
}

// ---- --tree-compare: legacy per-node binning vs quantize-once binning ---
//
// Both engines share identical exact-split and predict code; the compared
// quantity is purely how large nodes find splits — per-node
// std::upper_bound re-binning against per-tree sampled cuts (legacy) vs
// histogram accumulation over shared BinnedMatrix codes (binned). A small
// exact_split_max keeps the workload histogram-dominated so the comparison
// measures the engines, not the shared exact path; the same value is used
// on both sides.

/// Smoke dataset: gaussian blobs around scrambled lattice centers, sized
/// so forest fits take long enough to time stably but stay smoke-fast.
std::pair<ml::Matrix, std::vector<int>> tree_compare_blobs(std::size_t per_class,
                                                           int classes,
                                                           std::size_t dims,
                                                           std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> noise(0.0f, 2.2f);
  ml::Matrix x(per_class * static_cast<std::size_t>(classes), dims);
  std::vector<int> y;
  std::size_t row = 0;
  for (int c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i, ++row) {
      for (std::size_t f = 0; f < dims; ++f) {
        const int center = (c * 31 + static_cast<int>(f) * 17) % 7 - 3;
        x(row, f) = static_cast<float>(center) + noise(rng);
      }
      y.push_back(c);
    }
  }
  return {std::move(x), std::move(y)};
}

int run_tree_compare(const std::string& path) {
  constexpr int kReps = 2;
  const std::size_t kWidths[] = {1, 2, 7};

  const int classes = 6;
  auto [x, y] = tree_compare_blobs(2000, classes, 24, 71);
  // Modulo split: every 5th row tests, the rest train (class-order safe).
  std::vector<std::size_t> train_idx, test_idx;
  for (std::size_t i = 0; i < x.rows(); ++i)
    (i % 5 == 0 ? test_idx : train_idx).push_back(i);
  ml::Matrix xtr(train_idx.size(), x.cols()), xte(test_idx.size(), x.cols());
  std::vector<int> ytr, yte;
  for (std::size_t i = 0; i < train_idx.size(); ++i) {
    std::memcpy(xtr.row(i), x.row(train_idx[i]), x.cols() * sizeof(float));
    ytr.push_back(y[train_idx[i]]);
  }
  for (std::size_t i = 0; i < test_idx.size(); ++i) {
    std::memcpy(xte.row(i), x.row(test_idx[i]), x.cols() * sizeof(float));
    yte.push_back(y[test_idx[i]]);
  }

  // Shared tree geometry for both engines: histogram-path dominated.
  constexpr int kBins = 64;
  constexpr std::size_t kExactMax = 64;

  auto forest_cfg = [&](bool binned) {
    ml::ForestConfig fc;
    fc.num_trees = 10;
    fc.seed = 17;
    fc.binned = binned;
    fc.tree.histogram_bins = kBins;
    fc.tree.exact_split_max = kExactMax;
    return fc;
  };
  auto gbdt_cfg = [&](bool binned) {
    ml::GbdtConfig gc = ml::GbdtConfig::xgboost_style();
    gc.rounds = 6;
    gc.binned = binned;
    gc.tree.histogram_bins = kBins;
    gc.tree.exact_split_max = kExactMax;
    return gc;
  };

  struct TreeCase {
    std::string kernel;
    bool subtract;                        // sibling subtraction active?
    std::function<void(bool)> fit_only;   // timed body
    std::function<std::pair<std::string, double>(bool)> eval;  // digest, acc
  };
  std::vector<TreeCase> cases;
  cases.push_back(
      {"forest_fit", false,
       [&](bool binned) {
         ml::RandomForest rf(forest_cfg(binned));
         rf.fit(xtr, ytr, classes);
         benchmark::DoNotOptimize(rf);
       },
       [&](bool binned) {
         ml::RandomForest rf(forest_cfg(binned));
         rf.fit(xtr, ytr, classes);
         auto pred = rf.predict(xte);
         auto imp = rf.feature_importance();
         const double acc = ml::evaluate(yte, pred, classes).accuracy;
         return std::make_pair(digest_ints(pred) + "/" + digest_doubles(imp),
                               acc);
       }});
  cases.push_back(
      {"gbdt_fit", true,
       [&](bool binned) {
         ml::GradientBoosting gb(gbdt_cfg(binned));
         gb.fit(xtr, ytr, classes);
         benchmark::DoNotOptimize(gb);
       },
       [&](bool binned) {
         ml::GradientBoosting gb(gbdt_cfg(binned));
         gb.fit(xtr, ytr, classes);
         auto pred = gb.predict(xte);
         auto scores = gb.decision_function(xte);
         const double acc = ml::evaluate(yte, pred, classes).accuracy;
         return std::make_pair(
             digest_ints(pred) + "/" + digest_floats(scores.data()), acc);
       }});

  core::Json doc = core::Json::object();
  doc.set("schema_version", core::Json(1));
  doc.set("bench", core::Json("micro_substrate_tree"));
  doc.set("simd_backend", core::Json(core::simd::backend_name()));
  doc.set("histogram_bins", core::Json(kBins));
  doc.set("exact_split_max", core::Json(kExactMax));
  doc.set("train_rows", core::Json(xtr.rows()));
  doc.set("test_rows", core::Json(xte.rows()));
  doc.set("features", core::Json(x.cols()));
  doc.set("classes", core::Json(classes));
  core::Json arr = core::Json::array();

  bool all_identical = true;
  for (auto& c : cases) {
    // Timing at SUGAR_THREADS=1: the speedup must come from the algorithm
    // (quantize once, add instead of search), not from the pool.
    core::set_global_threads(1);
    c.fit_only(false);  // warm
    const double t_legacy = best_seconds(kReps, [&] { c.fit_only(false); });
    c.fit_only(true);
    const double t_binned = best_seconds(kReps, [&] { c.fit_only(true); });
    const auto [d_legacy, acc_legacy] = c.eval(false);
    (void)d_legacy;  // engines pick different splits; only accuracy compares

    // Determinism gate: the binned fit digest must be bit-identical at
    // every pool width.
    std::string digests[3];
    for (std::size_t w = 0; w < 3; ++w) {
      core::set_global_threads(kWidths[w]);
      digests[w] = c.eval(true).first;
    }
    core::set_global_threads(1);
    const double acc_binned = c.eval(true).second;
    const bool identical =
        digests[0] == digests[1] && digests[1] == digests[2];
    all_identical = all_identical && identical;
    const double speedup = t_binned > 0 ? t_legacy / t_binned : 0.0;
    const double delta = acc_binned - acc_legacy;

    core::Json row = core::Json::object();
    row.set("kernel", core::Json(c.kernel));
    row.set("subtract", core::Json(c.subtract));
    row.set("histogram_bins", core::Json(kBins));
    row.set("legacy_seconds", core::Json(t_legacy));
    row.set("binned_seconds", core::Json(t_binned));
    row.set("speedup", core::Json(speedup));
    row.set("accuracy_legacy", core::Json(acc_legacy));
    row.set("accuracy_binned", core::Json(acc_binned));
    row.set("accuracy_delta", core::Json(delta));
    row.set("digest_t1", core::Json(digests[0]));
    row.set("digest_t2", core::Json(digests[1]));
    row.set("digest_t7", core::Json(digests[2]));
    row.set("identical", core::Json(identical));
    arr.push(row);
    std::printf(
        "%-11s legacy %.3fs  binned %.3fs  speedup %.2fx  acc %.4f -> %.4f "
        "(delta %+.4f)  %s\n",
        c.kernel.c_str(), t_legacy, t_binned, speedup, acc_legacy, acc_binned,
        delta, identical ? "bit-identical@1/2/7" : "WIDTH MISMATCH");
  }
  core::set_global_threads(0);  // restore SUGAR_THREADS / hardware default

  doc.set("cases", arr);
  doc.set("all_identical", core::Json(all_identical));
  std::string err;
  if (!core::atomic_write_file(path, doc.dump(2) + "\n", &err)) {
    std::fprintf(stderr, "tree-compare: artifact write failed: %s\n",
                 err.c_str());
    return 1;
  }
  std::printf("Artifact: %s\n", path.c_str());
  if (!all_identical) {
    std::fprintf(stderr,
                 "tree-compare: binned fit differs across pool widths — "
                 "determinism contract violated\n");
    return 1;
  }
  return 0;
}

// ---- --ooc-compare: resident vs paged fit identity + RSS gate ----------

// Dataset geometry: 3M rows x 32 code columns = 96 MB of codes on disk,
// fit by the paged children under a 4 MB cache budget (24x smaller). The
// child's fixed overhead (binary, labels, row index, partition scratch)
// sits well under the payload size, so "peak RSS < dataset bytes" is a
// real streaming gate, not slack.
constexpr std::size_t kOocRows = 3000000;
constexpr std::size_t kOocCols = 32;
constexpr int kOocBins = 64;
constexpr int kOocClasses = 6;
constexpr std::size_t kOocGroupRows = 65536;
constexpr std::size_t kOocBudgetMb = 4;
constexpr std::size_t kOocProbeRows = 4096;

std::uint64_t ooc_mix(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

int ooc_label(std::uint64_t r) {
  return static_cast<int>(ooc_mix(r * 2 + 1) % kOocClasses);
}

/// Deterministic synthetic feature value: a hash-noise base plus a
/// class-dependent shift so the forest has real splits to find (all-leaf
/// trees would make the digest gate vacuous).
float ooc_value(std::uint64_t r, std::size_t c) {
  const int y = ooc_label(r);
  const std::uint64_t h = ooc_mix((r << 8) ^ (c * 0x9E37u + 3));
  const float base =
      static_cast<float>(h & 0xFFFFFu) / static_cast<float>(1u << 20);
  return base + 0.35f * static_cast<float>(
                            (static_cast<std::size_t>(y) * 7 + c) % 5);
}

ml::ForestConfig ooc_forest_cfg() {
  ml::ForestConfig cfg;
  cfg.num_trees = 2;
  cfg.seed = 29;
  cfg.tree.max_depth = 8;
  cfg.tree.features_per_split = 6;
  cfg.tree.histogram_bins = kOocBins;
  return cfg;
}

/// Model fingerprint: predictions on a fixed probe block (rows beyond the
/// training range) plus the bit pattern of the importance vector.
std::string ooc_digest(const ml::RandomForest& forest) {
  ml::Matrix probe(kOocProbeRows, kOocCols);
  for (std::size_t r = 0; r < kOocProbeRows; ++r)
    for (std::size_t c = 0; c < kOocCols; ++c)
      probe(r, c) = ooc_value(kOocRows + r, c);
  return digest_ints(forest.predict(probe)) + "/" +
         digest_doubles(forest.feature_importance());
}

/// Child mode: open the code store, fit paged, print one JSON line of
/// evidence (digest, seconds, peak RSS, cache counters) on stdout.
int run_ooc_fit_child(const std::string& store_path) {
  dataset::StoreError serr;
  auto reader = dataset::StoreReader::open(store_path, &serr);
  if (!reader) {
    std::fprintf(stderr, "ooc-fit: open failed: %s\n", serr.message.c_str());
    return 2;
  }
  const int ycol = reader->column("y");
  if (ycol < 0) {
    std::fprintf(stderr, "ooc-fit: store has no \"y\" column\n");
    return 2;
  }
  std::vector<int> y;
  y.reserve(reader->rows());
  dataset::ColumnCursor ycur(*reader, static_cast<std::size_t>(ycol));
  dataset::ColumnBlock blk;
  while (ycur.next(blk, &serr))
    for (std::uint32_t i = 0; i < blk.nrows; ++i)
      y.push_back(blk.as<std::int32_t>()[i]);
  if (serr) {
    std::fprintf(stderr, "ooc-fit: label scan failed: %s\n",
                 serr.message.c_str());
    return 2;
  }
  std::vector<std::size_t> code_cols(kOocCols);
  std::iota(code_cols.begin(), code_cols.end(), std::size_t{0});
  dataset::PagedCodeSource src(*reader, code_cols);

  ml::RandomForest forest(ooc_forest_cfg());
  const auto t0 = std::chrono::steady_clock::now();
  forest.fit_binned(src, y, kOocClasses);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto st = core::PageCache::global().stats();
  core::Json out = core::Json::object();
  out.set("digest", core::Json(ooc_digest(forest)));
  out.set("seconds", core::Json(seconds));
  out.set("peak_rss_bytes", core::Json(core::peak_rss_bytes()));
  out.set("payload_bytes", core::Json(reader->payload_bytes()));
  out.set("budget_bytes", core::Json(core::PageCache::global().budget_bytes()));
  out.set("hits", core::Json(st.hits));
  out.set("misses", core::Json(st.misses));
  out.set("hit_rate", core::Json(st.hit_rate()));
  out.set("evictions", core::Json(st.evictions));
  out.set("prefetch_issued", core::Json(st.prefetch_issued));
  out.set("prefetch_loaded", core::Json(st.prefetch_loaded));
  std::printf("%s\n", out.dump().c_str());
  return 0;
}

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (char ch : s) {
    if (ch == '\'')
      out += "'\\''";
    else
      out += ch;
  }
  out += "'";
  return out;
}

/// Resolves this binary's path for re-exec as the --ooc-fit child.
std::string self_exe(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) return std::string(buf, static_cast<std::size_t>(n));
  return argv0 ? argv0 : "";
}

int run_ooc_compare(const std::string& path, const char* argv0) {
  constexpr int kWidths[] = {1, 2, 7};
  const std::string store_path = path + ".store.sugc";

  // Pass 1: quantization cuts, exactly as BinnedMatrix would derive them.
  std::printf("ooc-compare: sketching %zu rows x %zu cols...\n", kOocRows,
              kOocCols);
  std::vector<std::vector<float>> cuts(kOocCols);
  {
    std::vector<ml::ColumnSketch> sketches;
    sketches.reserve(kOocCols);
    for (std::size_t c = 0; c < kOocCols; ++c)
      sketches.emplace_back(kOocBins);
    for (std::uint64_t r = 0; r < kOocRows; ++r)
      for (std::size_t c = 0; c < kOocCols; ++c)
        sketches[c].add(ooc_value(r, c));
    for (std::size_t c = 0; c < kOocCols; ++c)
      cuts[c] = sketches[c].finalize();
  }

  // Pass 2: write the code store and keep a resident copy of the codes +
  // labels for the in-memory comparator arm.
  std::vector<dataset::ColumnSpec> schema;
  for (std::size_t c = 0; c < kOocCols; ++c)
    schema.push_back({"f" + std::to_string(c), dataset::ColumnType::U8,
                      cuts[c]});
  schema.push_back({"y", dataset::ColumnType::I32, {}});
  dataset::StoreWriter::Options wopts;
  wopts.group_rows = kOocGroupRows;
  wopts.bins = kOocBins;
  dataset::StoreWriter writer(store_path, schema, wopts);
  std::vector<std::vector<std::uint8_t>> codes(
      kOocCols, std::vector<std::uint8_t>());
  for (auto& col : codes) col.reserve(kOocRows);
  std::vector<int> y;
  y.reserve(kOocRows);
  dataset::StoreError serr;
  for (std::uint64_t r = 0; r < kOocRows; ++r) {
    for (std::size_t c = 0; c < kOocCols; ++c) {
      const auto code = static_cast<std::uint8_t>(
          ml::quantize_bin(cuts[c], ooc_value(r, c)));
      writer.add_u8(c, code);
      codes[c].push_back(code);
    }
    const int label = ooc_label(r);
    writer.add_i32(kOocCols, label);
    y.push_back(label);
    if (!writer.end_row(&serr)) break;
  }
  if (!serr) writer.finalize(&serr);
  if (serr) {
    std::fprintf(stderr, "ooc-compare: store write failed: %s\n",
                 serr.message.c_str());
    return 1;
  }
  struct stat stbuf {};
  const std::uint64_t store_bytes =
      ::stat(store_path.c_str(), &stbuf) == 0
          ? static_cast<std::uint64_t>(stbuf.st_size)
          : 0;
  std::uint64_t payload_bytes = 0;
  {
    auto probe_reader = dataset::StoreReader::open(store_path, &serr);
    if (!probe_reader) {
      std::fprintf(stderr, "ooc-compare: reopen failed: %s\n",
                   serr.message.c_str());
      return 1;
    }
    payload_bytes = probe_reader->payload_bytes();
  }
  std::printf("ooc-compare: store %s  (%.1f MB file, %.1f MB payload)\n",
              store_path.c_str(), static_cast<double>(store_bytes) / 1048576.0,
              static_cast<double>(payload_bytes) / 1048576.0);

  const dataset::ResidentCodeSource resident(std::move(codes), cuts, kOocBins);
  const std::string exe = self_exe(argv0);

  core::Json arr = core::Json::array();
  bool all_identical = true;
  bool rss_ok = true;
  for (const int w : kWidths) {
    // Resident arm in-process (RSS is irrelevant here; this arm defines
    // the reference digest).
    core::set_global_threads(w);
    ml::RandomForest rf(ooc_forest_cfg());
    const auto t0 = std::chrono::steady_clock::now();
    rf.fit_binned(resident, y, kOocClasses);
    const double resident_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const std::string resident_digest = ooc_digest(rf);

    // Paged arm in a child process: ru_maxrss is process-monotone, so the
    // parent (which just held the whole dataset) cannot measure a paged
    // peak — a fresh process can.
    const std::string cmd = "SUGAR_THREADS=" + std::to_string(w) +
                            " SUGAR_PAGE_CACHE_MB=" +
                            std::to_string(kOocBudgetMb) + " " +
                            shell_quote(exe) + " --ooc-fit " +
                            shell_quote(store_path);
    FILE* pipe = ::popen(cmd.c_str(), "r");
    if (!pipe) {
      std::fprintf(stderr, "ooc-compare: popen failed\n");
      return 1;
    }
    std::string child_out;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), pipe)) child_out += buf;
    const int status = ::pclose(pipe);
    std::optional<core::Json> child;
    // The evidence line is the last parseable line on the child's stdout.
    std::istringstream lines(child_out);
    for (std::string line; std::getline(lines, line);)
      if (auto j = core::Json::parse(line)) child = std::move(j);
    if (status != 0 || !child || !child->is_object()) {
      std::fprintf(stderr,
                   "ooc-compare: --ooc-fit child (threads=%d) failed "
                   "(status %d)\n",
                   w, status);
      return 1;
    }
    const auto num = [&](const char* key) {
      const core::Json* v = child->find(key);
      return v ? v->number_or(0.0) : 0.0;
    };
    const core::Json* dj = child->find("digest");
    const std::string paged_digest = dj ? dj->string_or("") : "";
    const double paged_seconds = num("seconds");
    const auto paged_rss = static_cast<std::uint64_t>(num("peak_rss_bytes"));
    const double hit_rate = num("hit_rate");
    const bool identical = paged_digest == resident_digest;
    const bool under = paged_rss > 0 && paged_rss < payload_bytes;
    all_identical = all_identical && identical;
    rss_ok = rss_ok && under;

    core::Json row = core::Json::object();
    row.set("threads", core::Json(w));
    row.set("resident_digest", core::Json(resident_digest));
    row.set("paged_digest", core::Json(paged_digest));
    row.set("identical", core::Json(identical));
    row.set("resident_seconds", core::Json(resident_seconds));
    row.set("paged_seconds", core::Json(paged_seconds));
    row.set("paged_rows_per_sec",
            core::Json(paged_seconds > 0
                           ? static_cast<double>(kOocRows) / paged_seconds
                           : 0.0));
    row.set("paged_peak_rss_bytes", core::Json(paged_rss));
    row.set("rss_under_dataset", core::Json(under));
    row.set("hit_rate", core::Json(hit_rate));
    row.set("hits", core::Json(num("hits")));
    row.set("misses", core::Json(num("misses")));
    row.set("evictions", core::Json(num("evictions")));
    row.set("prefetch_issued", core::Json(num("prefetch_issued")));
    row.set("prefetch_loaded", core::Json(num("prefetch_loaded")));
    arr.push(row);
    std::printf(
        "ooc-compare t=%d  resident %.2fs  paged %.2fs  rss %.1f MB / "
        "payload %.1f MB  hit %.3f  %s %s\n",
        w, resident_seconds, paged_seconds,
        static_cast<double>(paged_rss) / 1048576.0,
        static_cast<double>(payload_bytes) / 1048576.0, hit_rate,
        identical ? "bit-identical" : "DIGEST MISMATCH",
        under ? "rss-ok" : "RSS OVER DATASET");
  }
  core::set_global_threads(0);  // restore SUGAR_THREADS / hardware default
  std::remove(store_path.c_str());

  core::Json doc = core::Json::object();
  doc.set("schema_version", core::Json(1));
  doc.set("bench", core::Json("micro_substrate_ooc"));
  doc.set("rows", core::Json(kOocRows));
  doc.set("features", core::Json(kOocCols));
  doc.set("bins", core::Json(kOocBins));
  doc.set("classes", core::Json(kOocClasses));
  doc.set("trees", core::Json(ooc_forest_cfg().num_trees));
  doc.set("group_rows", core::Json(kOocGroupRows));
  doc.set("store_bytes", core::Json(store_bytes));
  doc.set("payload_bytes", core::Json(payload_bytes));
  doc.set("page_cache_budget_mb", core::Json(kOocBudgetMb));
  doc.set("cases", arr);
  doc.set("all_identical", core::Json(all_identical));
  doc.set("rss_ok", core::Json(rss_ok));
  std::string err;
  if (!core::atomic_write_file(path, doc.dump(2) + "\n", &err)) {
    std::fprintf(stderr, "ooc-compare: artifact write failed: %s\n",
                 err.c_str());
    return 1;
  }
  std::printf("Artifact: %s\n", path.c_str());
  if (!all_identical) {
    std::fprintf(stderr,
                 "ooc-compare: paged fit differs from resident fit — "
                 "bit-identity contract violated\n");
    return 1;
  }
  if (!rss_ok) {
    std::fprintf(stderr,
                 "ooc-compare: a paged child's peak RSS reached the dataset "
                 "size — the fit did not stream\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--substrate-compare") == 0) {
    if (argc != 3) {
      std::fprintf(stderr,
                   "usage: bench_micro_substrate --substrate-compare <out.json>\n");
      return 2;
    }
    return run_substrate_compare(argv[2]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--simd-compare") == 0) {
    if (argc != 3) {
      std::fprintf(stderr,
                   "usage: bench_micro_substrate --simd-compare <out.json>\n");
      return 2;
    }
    return run_simd_compare(argv[2]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--trace-compare") == 0) {
    if (argc != 3) {
      std::fprintf(stderr,
                   "usage: bench_micro_substrate --trace-compare <out.json>\n");
      return 2;
    }
    return run_trace_compare(argv[2]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--tree-compare") == 0) {
    if (argc != 3) {
      std::fprintf(stderr,
                   "usage: bench_micro_substrate --tree-compare <out.json>\n");
      return 2;
    }
    return run_tree_compare(argv[2]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--ooc-compare") == 0) {
    if (argc != 3) {
      std::fprintf(stderr,
                   "usage: bench_micro_substrate --ooc-compare <out.json>\n");
      return 2;
    }
    return run_ooc_compare(argv[2], argv[0]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--ooc-fit") == 0) {
    if (argc != 3) {
      std::fprintf(stderr,
                   "usage: bench_micro_substrate --ooc-fit <store.sugc>\n");
      return 2;
    }
    return run_ooc_fit_child(argv[2]);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
