// google-benchmark microbenchmarks for the substrate: parser, serializer,
// checksum, flow assembly, split, featurization, pcap I/O throughput, and
// the parallel compute kernels (legacy vs blocked GEMM, forest fit, k-NN).
//
// Invoked as `bench_micro_substrate --substrate-compare <out.json>` it
// instead runs the deterministic sequential-vs-parallel comparison used by
// the perf_smoke ctest label: every kernel at SUGAR_THREADS=1 and =4 with
// bit-identical-output verification, speedups recorded in the artifact
// (speedup is reported, not gated — determinism is the hard requirement).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <random>
#include <sstream>

#include "core/artifact.h"
#include "core/threadpool.h"
#include "dataset/split.h"
#include "dataset/task.h"
#include "ml/forest.h"
#include "ml/knn.h"
#include "ml/matrix.h"
#include "net/checksum.h"
#include "net/flow.h"
#include "net/mutate.h"
#include "net/parser.h"
#include "net/pcap.h"
#include "replearn/featurize.h"
#include "trafficgen/datasets.h"

using namespace sugar;

namespace {

std::vector<net::Packet> sample_trace(std::size_t flows = 60) {
  trafficgen::GenOptions opts;
  opts.seed = 42;
  opts.flows_per_class = flows / 16 + 1;
  return trafficgen::generate_iscx_vpn(opts).packets;
}

const std::vector<net::Packet>& cached_trace() {
  static const std::vector<net::Packet> trace = sample_trace();
  return trace;
}

void BM_ParsePacket(benchmark::State& state) {
  const auto& trace = cached_trace();
  std::size_t i = 0, bytes = 0;
  for (auto _ : state) {
    auto outcome = net::parse_packet(trace[i % trace.size()]);
    benchmark::DoNotOptimize(outcome);
    bytes += trace[i % trace.size()].data.size();
    ++i;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ParsePacket);

void BM_Checksum1500(benchmark::State& state) {
  std::vector<std::uint8_t> buf(1500, 0xA5);
  std::size_t bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::checksum(buf));
    bytes += buf.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Checksum1500);

void BM_GenerateFlow(benchmark::State& state) {
  auto profiles = trafficgen::iscx_vpn_profiles();
  trafficgen::Rng rng(7);
  std::size_t packets = 0;
  for (auto _ : state) {
    auto pkts = trafficgen::generate_flow(profiles[2], false, rng, 0);
    packets += pkts.size();
    benchmark::DoNotOptimize(pkts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(packets));
}
BENCHMARK(BM_GenerateFlow);

void BM_FlowAssembly(benchmark::State& state) {
  const auto& trace = cached_trace();
  for (auto _ : state) {
    auto table = net::assemble_flows(trace);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_FlowAssembly);

void BM_RandomizeSeqAck(benchmark::State& state) {
  auto trace = cached_trace();
  std::mt19937_64 rng(3);
  std::size_t i = 0;
  for (auto _ : state) {
    net::randomize_seq_ack(trace[i % trace.size()], rng);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RandomizeSeqAck);

void BM_PcapRoundTrip(benchmark::State& state) {
  const auto& trace = cached_trace();
  for (auto _ : state) {
    std::stringstream ss;
    {
      net::PcapWriter writer(ss);
      writer.write_all(trace);
    }
    net::PcapReader reader(ss);
    auto back = reader.read_all();
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_PcapRoundTrip);

void BM_HeaderFeaturize(benchmark::State& state) {
  trafficgen::GenOptions opts;
  opts.seed = 9;
  opts.flows_per_class = 2;
  auto trace = trafficgen::generate_iscx_vpn(opts);
  auto ds = dataset::make_task_dataset(trace, dataset::TaskId::VpnApp);
  std::vector<std::size_t> idx(ds.size());
  std::iota(idx.begin(), idx.end(), 0);
  for (auto _ : state) {
    auto x = replearn::header_feature_matrix(ds, idx, {});
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ds.size()));
}
BENCHMARK(BM_HeaderFeaturize);

// ---- Parallel compute kernels -------------------------------------------

ml::Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  ml::Matrix m(rows, cols);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto& v : m.data()) v = dist(rng);
  return m;
}

/// The pre-substrate matmul, kept verbatim for comparison: single-threaded
/// ikj with the `aik == 0.0f` branch-skip that the blocked kernel dropped
/// (on dense floats the branch is a mispredict tax, not an optimization).
ml::Matrix legacy_branchy_matmul(const ml::Matrix& a, const ml::Matrix& b) {
  ml::Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      float aik = ai[k];
      if (aik == 0.0f) continue;
      const float* bk = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) ci[j] += aik * bk[j];
    }
  }
  return c;
}

void BM_MatmulLegacyBranchy(benchmark::State& state) {
  auto a = random_matrix(160, 128, 21);
  auto b = random_matrix(128, 96, 22);
  for (auto _ : state) {
    auto c = legacy_branchy_matmul(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.rows() * a.cols() * b.cols()));
}
BENCHMARK(BM_MatmulLegacyBranchy);

void BM_MatmulBlockedSeq(benchmark::State& state) {
  core::set_global_threads(1);
  auto a = random_matrix(160, 128, 21);
  auto b = random_matrix(128, 96, 22);
  for (auto _ : state) {
    auto c = ml::matmul(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.rows() * a.cols() * b.cols()));
  core::set_global_threads(0);
}
BENCHMARK(BM_MatmulBlockedSeq);

void BM_MatmulBlockedPar(benchmark::State& state) {
  core::set_global_threads(0);  // SUGAR_THREADS / hardware_concurrency
  auto a = random_matrix(160, 128, 21);
  auto b = random_matrix(128, 96, 22);
  for (auto _ : state) {
    auto c = ml::matmul(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.rows() * a.cols() * b.cols()));
}
BENCHMARK(BM_MatmulBlockedPar);

void BM_ForestFitSeq(benchmark::State& state) {
  core::set_global_threads(1);
  auto x = random_matrix(300, 16, 31);
  std::vector<int> y(x.rows());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 5);
  for (auto _ : state) {
    ml::ForestConfig fc;
    fc.num_trees = 16;
    ml::RandomForest rf(fc);
    rf.fit(x, y, 5);
    benchmark::DoNotOptimize(rf);
  }
  core::set_global_threads(0);
}
BENCHMARK(BM_ForestFitSeq);

void BM_ForestFitPar(benchmark::State& state) {
  core::set_global_threads(0);
  auto x = random_matrix(300, 16, 31);
  std::vector<int> y(x.rows());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 5);
  for (auto _ : state) {
    ml::ForestConfig fc;
    fc.num_trees = 16;
    ml::RandomForest rf(fc);
    rf.fit(x, y, 5);
    benchmark::DoNotOptimize(rf);
  }
}
BENCHMARK(BM_ForestFitPar);

void BM_KnnPurity(benchmark::State& state) {
  auto e = random_matrix(400, 24, 41);
  std::vector<int> labels(e.rows());
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<int>(i % 6);
  for (auto _ : state) {
    auto p = ml::knn_purity(e, labels, 5);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(e.rows() * e.rows()));
}
BENCHMARK(BM_KnnPurity);

void BM_PerFlowSplit(benchmark::State& state) {
  trafficgen::GenOptions opts;
  opts.seed = 9;
  opts.flows_per_class = 4;
  auto trace = trafficgen::generate_iscx_vpn(opts);
  auto ds = dataset::make_task_dataset(trace, dataset::TaskId::VpnApp);
  for (auto _ : state) {
    dataset::SplitOptions so;
    so.policy = dataset::SplitPolicy::PerFlow;
    auto split = dataset::split_dataset(ds, so);
    benchmark::DoNotOptimize(split);
  }
}
BENCHMARK(BM_PerFlowSplit);

// ---- --substrate-compare: deterministic seq-vs-par verification ---------

/// Bit-exact digest of a float buffer (the raw bytes, so -0.0f vs +0.0f or
/// any last-ulp drift is caught).
std::string digest_floats(const std::vector<float>& v) {
  return core::hex64(core::fnv1a64(std::string_view(
      reinterpret_cast<const char*>(v.data()), v.size() * sizeof(float))));
}

std::string digest_ints(const std::vector<int>& v) {
  return core::hex64(core::fnv1a64(std::string_view(
      reinterpret_cast<const char*>(v.data()), v.size() * sizeof(int))));
}

std::string digest_doubles(const std::vector<double>& v) {
  return core::hex64(core::fnv1a64(std::string_view(
      reinterpret_cast<const char*>(v.data()), v.size() * sizeof(double))));
}

struct CompareCase {
  std::string kernel;
  // Runs the kernel once and returns a bit-exact digest of its output.
  std::function<std::string()> run;
};

/// Wall-clock of the fastest of `reps` runs (min filters scheduler noise).
template <typename Fn>
double best_seconds(int reps, const Fn& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                   .count();
    if (s < best) best = s;
  }
  return best;
}

int run_substrate_compare(const std::string& path) {
  constexpr std::size_t kSeqThreads = 1, kParThreads = 4;
  constexpr int kReps = 3;

  // Shared inputs, deterministic across both thread counts.
  auto a = random_matrix(224, 192, 101);
  auto b = random_matrix(192, 160, 102);
  auto at = random_matrix(192, 224, 103);  // for matmul_tn (same row count as b')
  auto bt = random_matrix(192, 160, 104);
  auto x = random_matrix(420, 20, 105);
  std::vector<int> y(x.rows());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 5);
  auto emb = random_matrix(360, 24, 106);
  std::vector<int> labels(emb.rows());
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<int>(i % 6);

  std::vector<CompareCase> cases;
  cases.push_back({"matmul", [&] { return digest_floats(ml::matmul(a, b).data()); }});
  cases.push_back(
      {"matmul_tn", [&] { return digest_floats(ml::matmul_tn(at, bt).data()); }});
  cases.push_back(
      {"matmul_nt", [&] { return digest_floats(ml::matmul_nt(a, a).data()); }});
  cases.push_back({"forest_fit", [&] {
                     ml::ForestConfig fc;
                     fc.num_trees = 24;
                     ml::RandomForest rf(fc);
                     rf.fit(x, y, 5);
                     auto pred = rf.predict(x);
                     auto imp = rf.feature_importance();
                     return digest_ints(pred) + "/" + digest_doubles(imp);
                   }});
  cases.push_back({"knn_purity", [&] {
                     auto p = ml::knn_purity(emb, labels, 5);
                     auto h = p.histogram;
                     h.push_back(p.mean_purity);
                     return digest_doubles(h);
                   }});

  core::Json doc = core::Json::object();
  doc.set("schema_version", core::Json(1));
  doc.set("bench", core::Json("micro_substrate_compare"));
  doc.set("threads_seq", core::Json(kSeqThreads));
  doc.set("threads_par", core::Json(kParThreads));
  doc.set("hardware_concurrency",
          core::Json(static_cast<std::size_t>(std::thread::hardware_concurrency())));
  core::Json arr = core::Json::array();

  bool all_identical = true;
  for (auto& c : cases) {
    core::set_global_threads(kSeqThreads);
    std::string d_seq = c.run();  // warm (and digest) before timing
    double t_seq = best_seconds(kReps, c.run);
    core::set_global_threads(kParThreads);
    std::string d_par = c.run();
    double t_par = best_seconds(kReps, c.run);
    bool identical = d_seq == d_par;
    all_identical = all_identical && identical;

    core::Json row = core::Json::object();
    row.set("kernel", core::Json(c.kernel));
    row.set("seq_seconds", core::Json(t_seq));
    row.set("par_seconds", core::Json(t_par));
    row.set("speedup", core::Json(t_par > 0 ? t_seq / t_par : 0.0));
    row.set("digest_seq", core::Json(d_seq));
    row.set("digest_par", core::Json(d_par));
    row.set("identical", core::Json(identical));
    arr.push(row);
    std::printf("%-12s seq %.4fs  par(%zu) %.4fs  speedup %.2fx  %s\n",
                c.kernel.c_str(), t_seq, kParThreads, t_par,
                t_par > 0 ? t_seq / t_par : 0.0,
                identical ? "bit-identical" : "OUTPUT MISMATCH");
  }
  core::set_global_threads(0);  // restore SUGAR_THREADS / hardware default

  doc.set("cases", arr);
  doc.set("all_identical", core::Json(all_identical));
  std::string err;
  if (!core::atomic_write_file(path, doc.dump(2) + "\n", &err)) {
    std::fprintf(stderr, "substrate-compare: artifact write failed: %s\n",
                 err.c_str());
    return 1;
  }
  std::printf("Artifact: %s\n", path.c_str());
  if (!all_identical) {
    std::fprintf(stderr,
                 "substrate-compare: parallel output differs from sequential — "
                 "determinism contract violated\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--substrate-compare") == 0) {
    if (argc != 3) {
      std::fprintf(stderr,
                   "usage: bench_micro_substrate --substrate-compare <out.json>\n");
      return 2;
    }
    return run_substrate_compare(argv[2]);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
