// google-benchmark microbenchmarks for the substrate: parser, serializer,
// checksum, flow assembly, split, featurization, pcap I/O throughput, and
// the parallel compute kernels (legacy vs blocked GEMM, forest fit, k-NN).
//
// Invoked as `bench_micro_substrate --substrate-compare <out.json>` it
// instead runs the deterministic sequential-vs-parallel comparison used by
// the perf_smoke ctest label: every kernel at SUGAR_THREADS=1 and =4 with
// bit-identical-output verification, speedups recorded in the artifact
// (speedup is reported, not gated — determinism is the hard requirement).
//
// `--simd-compare <out.json>` runs the scalar-reference vs core::simd
// comparison instead: each vector kernel must reproduce its no-vectorize
// scalar spec to the bit, with GFLOP/s and GB/s recorded (schema 3).
//
// `--trace-compare <out.json>` gates the observability substrate's
// zero-interference contract: every kernel runs once with SUGAR_TRACE off
// and once at the maximal `spans` mode, and the bit-exact output digests
// must match — tracing observes computation, it never perturbs it.
//
// `--tree-compare <out.json>` compares tree training engines on a smoke
// dataset: the legacy per-node binary-search binning (per-tree
// compute_cuts) vs the quantize-once ml::BinnedMatrix histogram path, at
// SUGAR_THREADS=1. Speedup and accuracy delta are recorded; the hard gate
// is that the binned fit digests are bit-identical at SUGAR_THREADS=1/2/7.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <random>
#include <sstream>

#include "core/artifact.h"
#include "core/simd.h"
#include "core/threadpool.h"
#include "core/trace.h"
#include "dataset/split.h"
#include "dataset/task.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/knn.h"
#include "ml/matrix.h"
#include "ml/metrics.h"
#include "net/checksum.h"
#include "net/flow.h"
#include "net/mutate.h"
#include "net/parser.h"
#include "net/pcap.h"
#include "replearn/featurize.h"
#include "trafficgen/datasets.h"

using namespace sugar;

namespace {

std::vector<net::Packet> sample_trace(std::size_t flows = 60) {
  trafficgen::GenOptions opts;
  opts.seed = 42;
  opts.flows_per_class = flows / 16 + 1;
  return trafficgen::generate_iscx_vpn(opts).packets;
}

const std::vector<net::Packet>& cached_trace() {
  static const std::vector<net::Packet> trace = sample_trace();
  return trace;
}

void BM_ParsePacket(benchmark::State& state) {
  const auto& trace = cached_trace();
  std::size_t i = 0, bytes = 0;
  for (auto _ : state) {
    auto outcome = net::parse_packet(trace[i % trace.size()]);
    benchmark::DoNotOptimize(outcome);
    bytes += trace[i % trace.size()].data.size();
    ++i;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ParsePacket);

void BM_Checksum1500(benchmark::State& state) {
  std::vector<std::uint8_t> buf(1500, 0xA5);
  std::size_t bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::checksum(buf));
    bytes += buf.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Checksum1500);

void BM_GenerateFlow(benchmark::State& state) {
  auto profiles = trafficgen::iscx_vpn_profiles();
  trafficgen::Rng rng(7);
  std::size_t packets = 0;
  for (auto _ : state) {
    auto pkts = trafficgen::generate_flow(profiles[2], false, rng, 0);
    packets += pkts.size();
    benchmark::DoNotOptimize(pkts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(packets));
}
BENCHMARK(BM_GenerateFlow);

void BM_FlowAssembly(benchmark::State& state) {
  const auto& trace = cached_trace();
  for (auto _ : state) {
    auto table = net::assemble_flows(trace);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_FlowAssembly);

void BM_RandomizeSeqAck(benchmark::State& state) {
  auto trace = cached_trace();
  std::mt19937_64 rng(3);
  std::size_t i = 0;
  for (auto _ : state) {
    net::randomize_seq_ack(trace[i % trace.size()], rng);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RandomizeSeqAck);

void BM_PcapRoundTrip(benchmark::State& state) {
  const auto& trace = cached_trace();
  for (auto _ : state) {
    std::stringstream ss;
    {
      net::PcapWriter writer(ss);
      writer.write_all(trace);
    }
    net::PcapReader reader(ss);
    auto back = reader.read_all();
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_PcapRoundTrip);

void BM_HeaderFeaturize(benchmark::State& state) {
  trafficgen::GenOptions opts;
  opts.seed = 9;
  opts.flows_per_class = 2;
  auto trace = trafficgen::generate_iscx_vpn(opts);
  auto ds = dataset::make_task_dataset(trace, dataset::TaskId::VpnApp);
  std::vector<std::size_t> idx(ds.size());
  std::iota(idx.begin(), idx.end(), 0);
  for (auto _ : state) {
    auto x = replearn::header_feature_matrix(ds, idx, {});
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ds.size()));
}
BENCHMARK(BM_HeaderFeaturize);

// ---- Parallel compute kernels -------------------------------------------

ml::Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  ml::Matrix m(rows, cols);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto& v : m.data()) v = dist(rng);
  return m;
}

/// The pre-substrate matmul, kept verbatim for comparison: single-threaded
/// ikj with the `aik == 0.0f` branch-skip that the blocked kernel dropped
/// (on dense floats the branch is a mispredict tax, not an optimization).
ml::Matrix legacy_branchy_matmul(const ml::Matrix& a, const ml::Matrix& b) {
  ml::Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      float aik = ai[k];
      if (aik == 0.0f) continue;
      const float* bk = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) ci[j] += aik * bk[j];
    }
  }
  return c;
}

void BM_MatmulLegacyBranchy(benchmark::State& state) {
  auto a = random_matrix(160, 128, 21);
  auto b = random_matrix(128, 96, 22);
  for (auto _ : state) {
    auto c = legacy_branchy_matmul(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.rows() * a.cols() * b.cols()));
}
BENCHMARK(BM_MatmulLegacyBranchy);

void BM_MatmulBlockedSeq(benchmark::State& state) {
  core::set_global_threads(1);
  auto a = random_matrix(160, 128, 21);
  auto b = random_matrix(128, 96, 22);
  for (auto _ : state) {
    auto c = ml::matmul(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.rows() * a.cols() * b.cols()));
  core::set_global_threads(0);
}
BENCHMARK(BM_MatmulBlockedSeq);

void BM_MatmulBlockedPar(benchmark::State& state) {
  core::set_global_threads(0);  // SUGAR_THREADS / hardware_concurrency
  auto a = random_matrix(160, 128, 21);
  auto b = random_matrix(128, 96, 22);
  for (auto _ : state) {
    auto c = ml::matmul(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.rows() * a.cols() * b.cols()));
}
BENCHMARK(BM_MatmulBlockedPar);

void BM_ForestFitSeq(benchmark::State& state) {
  core::set_global_threads(1);
  auto x = random_matrix(300, 16, 31);
  std::vector<int> y(x.rows());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 5);
  for (auto _ : state) {
    ml::ForestConfig fc;
    fc.num_trees = 16;
    ml::RandomForest rf(fc);
    rf.fit(x, y, 5);
    benchmark::DoNotOptimize(rf);
  }
  core::set_global_threads(0);
}
BENCHMARK(BM_ForestFitSeq);

void BM_ForestFitPar(benchmark::State& state) {
  core::set_global_threads(0);
  auto x = random_matrix(300, 16, 31);
  std::vector<int> y(x.rows());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 5);
  for (auto _ : state) {
    ml::ForestConfig fc;
    fc.num_trees = 16;
    ml::RandomForest rf(fc);
    rf.fit(x, y, 5);
    benchmark::DoNotOptimize(rf);
  }
}
BENCHMARK(BM_ForestFitPar);

void BM_KnnPurity(benchmark::State& state) {
  auto e = random_matrix(400, 24, 41);
  std::vector<int> labels(e.rows());
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<int>(i % 6);
  for (auto _ : state) {
    auto p = ml::knn_purity(e, labels, 5);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(e.rows() * e.rows()));
}
BENCHMARK(BM_KnnPurity);

void BM_PerFlowSplit(benchmark::State& state) {
  trafficgen::GenOptions opts;
  opts.seed = 9;
  opts.flows_per_class = 4;
  auto trace = trafficgen::generate_iscx_vpn(opts);
  auto ds = dataset::make_task_dataset(trace, dataset::TaskId::VpnApp);
  for (auto _ : state) {
    dataset::SplitOptions so;
    so.policy = dataset::SplitPolicy::PerFlow;
    auto split = dataset::split_dataset(ds, so);
    benchmark::DoNotOptimize(split);
  }
}
BENCHMARK(BM_PerFlowSplit);

// ---- --substrate-compare: deterministic seq-vs-par verification ---------

/// Bit-exact digest of a float buffer (the raw bytes, so -0.0f vs +0.0f or
/// any last-ulp drift is caught). Templated over the allocator so it takes
/// both std::vector<float> and ml::Matrix's aligned FloatBuffer.
template <typename Alloc>
std::string digest_floats(const std::vector<float, Alloc>& v) {
  return core::hex64(core::fnv1a64(std::string_view(
      reinterpret_cast<const char*>(v.data()), v.size() * sizeof(float))));
}

std::string digest_ints(const std::vector<int>& v) {
  return core::hex64(core::fnv1a64(std::string_view(
      reinterpret_cast<const char*>(v.data()), v.size() * sizeof(int))));
}

std::string digest_doubles(const std::vector<double>& v) {
  return core::hex64(core::fnv1a64(std::string_view(
      reinterpret_cast<const char*>(v.data()), v.size() * sizeof(double))));
}

struct CompareCase {
  std::string kernel;
  // Runs the kernel once and returns a bit-exact digest of its output.
  std::function<std::string()> run;
};

/// Wall-clock of the fastest of `reps` runs (min filters scheduler noise).
template <typename Fn>
double best_seconds(int reps, const Fn& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                   .count();
    if (s < best) best = s;
  }
  return best;
}

int run_substrate_compare(const std::string& path) {
  constexpr std::size_t kSeqThreads = 1, kParThreads = 4;
  constexpr int kReps = 3;

  // Shared inputs, deterministic across both thread counts.
  auto a = random_matrix(224, 192, 101);
  auto b = random_matrix(192, 160, 102);
  auto at = random_matrix(192, 224, 103);  // for matmul_tn (same row count as b')
  auto bt = random_matrix(192, 160, 104);
  auto x = random_matrix(420, 20, 105);
  std::vector<int> y(x.rows());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 5);
  auto emb = random_matrix(360, 24, 106);
  std::vector<int> labels(emb.rows());
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<int>(i % 6);

  std::vector<CompareCase> cases;
  cases.push_back({"matmul", [&] { return digest_floats(ml::matmul(a, b).data()); }});
  cases.push_back(
      {"matmul_tn", [&] { return digest_floats(ml::matmul_tn(at, bt).data()); }});
  cases.push_back(
      {"matmul_nt", [&] { return digest_floats(ml::matmul_nt(a, a).data()); }});
  cases.push_back({"forest_fit", [&] {
                     ml::ForestConfig fc;
                     fc.num_trees = 24;
                     ml::RandomForest rf(fc);
                     rf.fit(x, y, 5);
                     auto pred = rf.predict(x);
                     auto imp = rf.feature_importance();
                     return digest_ints(pred) + "/" + digest_doubles(imp);
                   }});
  cases.push_back({"knn_purity", [&] {
                     auto p = ml::knn_purity(emb, labels, 5);
                     auto h = p.histogram;
                     h.push_back(p.mean_purity);
                     return digest_doubles(h);
                   }});

  core::Json doc = core::Json::object();
  doc.set("schema_version", core::Json(1));
  doc.set("bench", core::Json("micro_substrate_compare"));
  doc.set("threads_seq", core::Json(kSeqThreads));
  doc.set("threads_par", core::Json(kParThreads));
  doc.set("hardware_concurrency",
          core::Json(static_cast<std::size_t>(std::thread::hardware_concurrency())));
  core::Json arr = core::Json::array();

  bool all_identical = true;
  for (auto& c : cases) {
    core::set_global_threads(kSeqThreads);
    std::string d_seq = c.run();  // warm (and digest) before timing
    double t_seq = best_seconds(kReps, c.run);
    core::set_global_threads(kParThreads);
    std::string d_par = c.run();
    double t_par = best_seconds(kReps, c.run);
    bool identical = d_seq == d_par;
    all_identical = all_identical && identical;

    core::Json row = core::Json::object();
    row.set("kernel", core::Json(c.kernel));
    row.set("seq_seconds", core::Json(t_seq));
    row.set("par_seconds", core::Json(t_par));
    row.set("speedup", core::Json(t_par > 0 ? t_seq / t_par : 0.0));
    row.set("digest_seq", core::Json(d_seq));
    row.set("digest_par", core::Json(d_par));
    row.set("identical", core::Json(identical));
    arr.push(row);
    std::printf("%-12s seq %.4fs  par(%zu) %.4fs  speedup %.2fx  %s\n",
                c.kernel.c_str(), t_seq, kParThreads, t_par,
                t_par > 0 ? t_seq / t_par : 0.0,
                identical ? "bit-identical" : "OUTPUT MISMATCH");
  }
  core::set_global_threads(0);  // restore SUGAR_THREADS / hardware default

  doc.set("cases", arr);
  doc.set("all_identical", core::Json(all_identical));
  std::string err;
  if (!core::atomic_write_file(path, doc.dump(2) + "\n", &err)) {
    std::fprintf(stderr, "substrate-compare: artifact write failed: %s\n",
                 err.c_str());
    return 1;
  }
  std::printf("Artifact: %s\n", path.c_str());
  if (!all_identical) {
    std::fprintf(stderr,
                 "substrate-compare: parallel output differs from sequential — "
                 "determinism contract violated\n");
    return 1;
  }
  return 0;
}

// ---- --simd-compare: scalar-reference vs core::simd verification --------
//
// The scalar references below are the determinism SPEC written as plain
// scalar code: k-ascending GEMM accumulation and the strided-8 blocked
// reduction from core/simd.h. The vectorized kernels must reproduce them
// to the bit — that identity is the gate. Throughput (GFLOP/s and GB/s)
// is reported, not gated: the required >= 2x GEMM speedup only appears on
// real vector hardware, not under SUGAR_SIMD_FORCE_SCALAR.
//
// GCC auto-vectorizes plain loops at -O2, which would turn the "scalar"
// baseline into SIMD and hide the speedup — so the references are compiled
// with the tree-vectorizer off where the attribute exists.
#if defined(__GNUC__) && !defined(__clang__)
#define SUGAR_SCALAR_REF __attribute__((optimize("no-tree-vectorize")))
#else
#define SUGAR_SCALAR_REF
#endif

SUGAR_SCALAR_REF void scalar_gemm(const ml::Matrix& a, const ml::Matrix& b,
                                  ml::Matrix& c) {
  c.reshape(a.rows(), b.cols());
  c.fill(0.0f);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      float aik = ai[k];
      const float* bk = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) ci[j] += aik * bk[j];
    }
  }
}

SUGAR_SCALAR_REF void scalar_axpy(float* dst, const float* src, float a,
                                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += a * src[i];
}

SUGAR_SCALAR_REF void scalar_relu(ml::Matrix& m, ml::Matrix& mask) {
  mask.reshape(m.rows(), m.cols());
  float* v = m.data().data();
  float* mk = mask.data().data();
  for (std::size_t i = 0; i < m.size(); ++i) {
    mk[i] = v[i] > 0.0f ? 1.0f : 0.0f;
    v[i] = v[i] > 0.0f ? v[i] : 0.0f;
  }
}

SUGAR_SCALAR_REF float scalar_strided_max(const float* a, std::size_t n) {
  if (n < 8) {
    float m = a[0];
    for (std::size_t i = 1; i < n; ++i) m = a[i] > m ? a[i] : m;
    return m;
  }
  float lanes[8];
  for (std::size_t l = 0; l < 8; ++l) lanes[l] = a[l];
  std::size_t i = 8;
  for (; i + 8 <= n; i += 8)
    for (std::size_t l = 0; l < 8; ++l)
      lanes[l] = a[i + l] > lanes[l] ? a[i + l] : lanes[l];
  for (std::size_t t = i; t < n; ++t)
    lanes[t - i] = a[t] > lanes[t - i] ? a[t] : lanes[t - i];
  return core::simd::reduce8_max(lanes);
}

SUGAR_SCALAR_REF float scalar_strided_sum(const float* a, std::size_t n) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    for (std::size_t l = 0; l < 8; ++l) lanes[l] += a[i + l];
  for (std::size_t t = i; t < n; ++t) lanes[t - i] += a[t];
  return core::simd::reduce8(lanes);
}

SUGAR_SCALAR_REF void scalar_softmax(ml::Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float* r = m.row(i);
    const std::size_t n = m.cols();
    float mx = scalar_strided_max(r, n);
    for (std::size_t j = 0; j < n; ++j) r[j] = std::exp(r[j] - mx);
    float inv = 1.0f / scalar_strided_sum(r, n);
    for (std::size_t j = 0; j < n; ++j) r[j] *= inv;
  }
}

SUGAR_SCALAR_REF float scalar_sqdist(const float* a, const float* b,
                                     std::size_t n) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    for (std::size_t l = 0; l < 8; ++l) {
      float d = a[i + l] - b[i + l];
      lanes[l] += d * d;
    }
  for (std::size_t t = i; t < n; ++t) {
    float d = a[t] - b[t];
    lanes[t - i] += d * d;
  }
  return core::simd::reduce8(lanes);
}

struct SimdCase {
  std::string kernel;
  double flops;  // arithmetic work of one run (0 when not meaningful)
  double bytes;  // memory traffic of one run
  std::function<std::string()> run_scalar;
  std::function<std::string()> run_simd;
};

int run_simd_compare(const std::string& path) {
  constexpr int kReps = 5;
  core::set_global_threads(1);  // kernel-only comparison, no thread effects

  auto a = random_matrix(256, 256, 201);
  auto b = random_matrix(256, 256, 202);
  const std::size_t kElems = 1u << 20;
  auto u = random_matrix(1, kElems, 203);
  auto v = random_matrix(1, kElems, 204);
  auto soft = random_matrix(512, 203, 205);  // odd cols: exercises the tail
  ml::Matrix scratch, scratch2, mask;

  auto digest_one = [](float x) {
    return core::hex64(core::fnv1a64(
        std::string_view(reinterpret_cast<const char*>(&x), sizeof x)));
  };

  std::vector<SimdCase> cases;
  const double gemm_flops = 2.0 * 256 * 256 * 256;
  const double gemm_bytes = 4.0 * (256.0 * 256 * 3);
  cases.push_back({"gemm", gemm_flops, gemm_bytes,
                   [&] {
                     scalar_gemm(a, b, scratch);
                     return digest_floats(scratch.data());
                   },
                   [&] {
                     ml::matmul_into(a, b, scratch2);
                     return digest_floats(scratch2.data());
                   }});
  cases.push_back({"axpy", 2.0 * kElems, 4.0 * kElems * 3,
                   [&] {
                     scratch.copy_from(u);
                     scalar_axpy(scratch.data().data(), v.data().data(), 1.25f,
                                 kElems);
                     return digest_floats(scratch.data());
                   },
                   [&] {
                     scratch2.copy_from(u);
                     core::simd::axpy(scratch2.data().data(), v.data().data(),
                                      1.25f, kElems);
                     return digest_floats(scratch2.data());
                   }});
  cases.push_back({"relu", 0.0, 4.0 * kElems * 3,
                   [&] {
                     scratch.copy_from(u);
                     scalar_relu(scratch, mask);
                     return digest_floats(scratch.data()) +
                            digest_floats(mask.data());
                   },
                   [&] {
                     scratch2.copy_from(u);
                     ml::relu_inplace_into(scratch2, mask);
                     return digest_floats(scratch2.data()) +
                            digest_floats(mask.data());
                   }});
  const double soft_elems = 512.0 * 203;
  cases.push_back({"softmax_rows", 4.0 * soft_elems, 4.0 * soft_elems * 4,
                   [&] {
                     scratch.copy_from(soft);
                     scalar_softmax(scratch);
                     return digest_floats(scratch.data());
                   },
                   [&] {
                     scratch2.copy_from(soft);
                     ml::softmax_rows(scratch2);
                     return digest_floats(scratch2.data());
                   }});
  cases.push_back({"squared_distance", 3.0 * kElems, 4.0 * kElems * 2,
                   [&] {
                     return digest_one(scalar_sqdist(u.data().data(),
                                                     v.data().data(), kElems));
                   },
                   [&] {
                     return digest_one(ml::squared_distance(
                         u.data().data(), v.data().data(), kElems));
                   }});

  core::Json doc = core::Json::object();
  doc.set("schema_version", core::Json(3));
  doc.set("bench", core::Json("micro_substrate_simd"));
  doc.set("simd_backend", core::Json(core::simd::backend_name()));
  doc.set("threads", core::Json(std::size_t{1}));
  core::Json arr = core::Json::array();

  bool all_identical = true;
  for (auto& c : cases) {
    std::string d_scalar = c.run_scalar();  // warm before timing
    double t_scalar = best_seconds(kReps, c.run_scalar);
    std::string d_simd = c.run_simd();
    double t_simd = best_seconds(kReps, c.run_simd);
    bool identical = d_scalar == d_simd;
    all_identical = all_identical && identical;
    double gflops = (c.flops > 0 && t_simd > 0) ? c.flops / t_simd / 1e9 : 0.0;
    double bps = t_simd > 0 ? c.bytes / t_simd : 0.0;

    core::Json row = core::Json::object();
    row.set("kernel", core::Json(c.kernel));
    row.set("scalar_seconds", core::Json(t_scalar));
    row.set("simd_seconds", core::Json(t_simd));
    row.set("speedup", core::Json(t_simd > 0 ? t_scalar / t_simd : 0.0));
    row.set("flops", core::Json(c.flops));
    row.set("bytes", core::Json(c.bytes));
    row.set("gflops", core::Json(gflops));
    row.set("bytes_per_s", core::Json(bps));
    row.set("digest_scalar", core::Json(d_scalar));
    row.set("digest_simd", core::Json(d_simd));
    row.set("identical", core::Json(identical));
    arr.push(row);
    std::printf(
        "%-18s scalar %.5fs  simd(%s) %.5fs  speedup %.2fx  %.2f GFLOP/s  "
        "%.2f GB/s  %s\n",
        c.kernel.c_str(), t_scalar, core::simd::backend_name(), t_simd,
        t_simd > 0 ? t_scalar / t_simd : 0.0, gflops, bps / 1e9,
        identical ? "bit-identical" : "OUTPUT MISMATCH");
  }
  core::set_global_threads(0);

  doc.set("cases", arr);
  doc.set("all_identical", core::Json(all_identical));
  std::string err;
  if (!core::atomic_write_file(path, doc.dump(2) + "\n", &err)) {
    std::fprintf(stderr, "simd-compare: artifact write failed: %s\n",
                 err.c_str());
    return 1;
  }
  std::printf("Artifact: %s\n", path.c_str());
  if (!all_identical) {
    std::fprintf(stderr,
                 "simd-compare: vectorized output differs from the scalar "
                 "reference — determinism contract violated\n");
    return 1;
  }
  return 0;
}

// ---- --trace-compare: trace-off vs trace-spans identity -----------------
//
// The observability substrate's hard contract: SUGAR_TRACE changes what is
// *recorded*, never what is *computed*. Each kernel runs with tracing off
// and again at the maximal `spans` mode (through the same instrumented code
// paths — ml.gemm_flops counters, ml.forest.fit / ml.knn.purity spans, the
// pcap.* ingest counters) and the raw output bytes must digest identically.
// The off/spans wall-clock ratio is reported as `speedup` so overhead is
// visible in the BENCH trajectory, but only identity is gated.

std::string digest_packets(const std::vector<net::Packet>& pkts) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis, chained
  for (const auto& p : pkts) {
    h ^= core::fnv1a64(std::string_view(
        reinterpret_cast<const char*>(p.data.data()), p.data.size()));
    h *= 1099511628211ull;
  }
  return core::hex64(h);
}

int run_trace_compare(const std::string& path) {
  constexpr int kReps = 3;
  // Fixed pool width: the comparison must isolate the trace mode, so both
  // runs share the same deterministic block structure.
  core::set_global_threads(2);

  auto a = random_matrix(224, 192, 301);
  auto b = random_matrix(192, 160, 302);
  auto x = random_matrix(420, 20, 303);
  std::vector<int> y(x.rows());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 5);
  auto emb = random_matrix(360, 24, 304);
  std::vector<int> labels(emb.rows());
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<int>(i % 6);
  const auto& trace_pkts = cached_trace();

  std::vector<CompareCase> cases;
  cases.push_back({"matmul", [&] { return digest_floats(ml::matmul(a, b).data()); }});
  cases.push_back({"forest_fit", [&] {
                     ml::ForestConfig fc;
                     fc.num_trees = 24;
                     ml::RandomForest rf(fc);
                     rf.fit(x, y, 5);
                     auto pred = rf.predict(x);
                     auto imp = rf.feature_importance();
                     return digest_ints(pred) + "/" + digest_doubles(imp);
                   }});
  cases.push_back({"knn_purity", [&] {
                     auto p = ml::knn_purity(emb, labels, 5);
                     auto h = p.histogram;
                     h.push_back(p.mean_purity);
                     return digest_doubles(h);
                   }});
  cases.push_back({"pcap_roundtrip", [&] {
                     std::stringstream ss;
                     {
                       net::PcapWriter writer(ss);
                       writer.write_all(trace_pkts);
                     }
                     net::PcapReader reader(ss);
                     return digest_packets(reader.read_all());
                   }});

  core::Json doc = core::Json::object();
  doc.set("schema_version", core::Json(1));
  doc.set("bench", core::Json("micro_substrate_trace"));
  doc.set("threads", core::Json(std::size_t{2}));
  core::Json arr = core::Json::array();

  bool all_identical = true;
  for (auto& c : cases) {
    core::trace::set_mode(core::trace::Mode::kOff);
    std::string d_off = c.run();  // warm (and digest) before timing
    double t_off = best_seconds(kReps, c.run);
    core::trace::reset();
    core::trace::set_mode(core::trace::Mode::kSpans);
    std::string d_spans = c.run();
    double t_spans = best_seconds(kReps, c.run);
    core::trace::set_mode(core::trace::Mode::kOff);
    bool identical = d_off == d_spans;
    all_identical = all_identical && identical;

    core::Json row = core::Json::object();
    row.set("kernel", core::Json(c.kernel));
    row.set("off_seconds", core::Json(t_off));
    row.set("spans_seconds", core::Json(t_spans));
    row.set("speedup", core::Json(t_off > 0 ? t_spans / t_off : 0.0));
    row.set("digest_off", core::Json(d_off));
    row.set("digest_spans", core::Json(d_spans));
    row.set("identical", core::Json(identical));
    arr.push(row);
    std::printf("%-15s off %.4fs  spans %.4fs  overhead %.2fx  %s\n",
                c.kernel.c_str(), t_off, t_spans,
                t_off > 0 ? t_spans / t_off : 0.0,
                identical ? "bit-identical" : "OUTPUT MISMATCH");
  }
  core::trace::reset();
  core::set_global_threads(0);  // restore SUGAR_THREADS / hardware default

  doc.set("cases", arr);
  doc.set("all_identical", core::Json(all_identical));
  std::string err;
  if (!core::atomic_write_file(path, doc.dump(2) + "\n", &err)) {
    std::fprintf(stderr, "trace-compare: artifact write failed: %s\n",
                 err.c_str());
    return 1;
  }
  std::printf("Artifact: %s\n", path.c_str());
  if (!all_identical) {
    std::fprintf(stderr,
                 "trace-compare: traced output differs from untraced — "
                 "observability perturbed the computation\n");
    return 1;
  }
  return 0;
}

// ---- --tree-compare: legacy per-node binning vs quantize-once binning ---
//
// Both engines share identical exact-split and predict code; the compared
// quantity is purely how large nodes find splits — per-node
// std::upper_bound re-binning against per-tree sampled cuts (legacy) vs
// histogram accumulation over shared BinnedMatrix codes (binned). A small
// exact_split_max keeps the workload histogram-dominated so the comparison
// measures the engines, not the shared exact path; the same value is used
// on both sides.

/// Smoke dataset: gaussian blobs around scrambled lattice centers, sized
/// so forest fits take long enough to time stably but stay smoke-fast.
std::pair<ml::Matrix, std::vector<int>> tree_compare_blobs(std::size_t per_class,
                                                           int classes,
                                                           std::size_t dims,
                                                           std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> noise(0.0f, 2.2f);
  ml::Matrix x(per_class * static_cast<std::size_t>(classes), dims);
  std::vector<int> y;
  std::size_t row = 0;
  for (int c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i, ++row) {
      for (std::size_t f = 0; f < dims; ++f) {
        const int center = (c * 31 + static_cast<int>(f) * 17) % 7 - 3;
        x(row, f) = static_cast<float>(center) + noise(rng);
      }
      y.push_back(c);
    }
  }
  return {std::move(x), std::move(y)};
}

int run_tree_compare(const std::string& path) {
  constexpr int kReps = 2;
  const std::size_t kWidths[] = {1, 2, 7};

  const int classes = 6;
  auto [x, y] = tree_compare_blobs(2000, classes, 24, 71);
  // Modulo split: every 5th row tests, the rest train (class-order safe).
  std::vector<std::size_t> train_idx, test_idx;
  for (std::size_t i = 0; i < x.rows(); ++i)
    (i % 5 == 0 ? test_idx : train_idx).push_back(i);
  ml::Matrix xtr(train_idx.size(), x.cols()), xte(test_idx.size(), x.cols());
  std::vector<int> ytr, yte;
  for (std::size_t i = 0; i < train_idx.size(); ++i) {
    std::memcpy(xtr.row(i), x.row(train_idx[i]), x.cols() * sizeof(float));
    ytr.push_back(y[train_idx[i]]);
  }
  for (std::size_t i = 0; i < test_idx.size(); ++i) {
    std::memcpy(xte.row(i), x.row(test_idx[i]), x.cols() * sizeof(float));
    yte.push_back(y[test_idx[i]]);
  }

  // Shared tree geometry for both engines: histogram-path dominated.
  constexpr int kBins = 64;
  constexpr std::size_t kExactMax = 64;

  auto forest_cfg = [&](bool binned) {
    ml::ForestConfig fc;
    fc.num_trees = 10;
    fc.seed = 17;
    fc.binned = binned;
    fc.tree.histogram_bins = kBins;
    fc.tree.exact_split_max = kExactMax;
    return fc;
  };
  auto gbdt_cfg = [&](bool binned) {
    ml::GbdtConfig gc = ml::GbdtConfig::xgboost_style();
    gc.rounds = 6;
    gc.binned = binned;
    gc.tree.histogram_bins = kBins;
    gc.tree.exact_split_max = kExactMax;
    return gc;
  };

  struct TreeCase {
    std::string kernel;
    bool subtract;                        // sibling subtraction active?
    std::function<void(bool)> fit_only;   // timed body
    std::function<std::pair<std::string, double>(bool)> eval;  // digest, acc
  };
  std::vector<TreeCase> cases;
  cases.push_back(
      {"forest_fit", false,
       [&](bool binned) {
         ml::RandomForest rf(forest_cfg(binned));
         rf.fit(xtr, ytr, classes);
         benchmark::DoNotOptimize(rf);
       },
       [&](bool binned) {
         ml::RandomForest rf(forest_cfg(binned));
         rf.fit(xtr, ytr, classes);
         auto pred = rf.predict(xte);
         auto imp = rf.feature_importance();
         const double acc = ml::evaluate(yte, pred, classes).accuracy;
         return std::make_pair(digest_ints(pred) + "/" + digest_doubles(imp),
                               acc);
       }});
  cases.push_back(
      {"gbdt_fit", true,
       [&](bool binned) {
         ml::GradientBoosting gb(gbdt_cfg(binned));
         gb.fit(xtr, ytr, classes);
         benchmark::DoNotOptimize(gb);
       },
       [&](bool binned) {
         ml::GradientBoosting gb(gbdt_cfg(binned));
         gb.fit(xtr, ytr, classes);
         auto pred = gb.predict(xte);
         auto scores = gb.decision_function(xte);
         const double acc = ml::evaluate(yte, pred, classes).accuracy;
         return std::make_pair(
             digest_ints(pred) + "/" + digest_floats(scores.data()), acc);
       }});

  core::Json doc = core::Json::object();
  doc.set("schema_version", core::Json(1));
  doc.set("bench", core::Json("micro_substrate_tree"));
  doc.set("simd_backend", core::Json(core::simd::backend_name()));
  doc.set("histogram_bins", core::Json(kBins));
  doc.set("exact_split_max", core::Json(kExactMax));
  doc.set("train_rows", core::Json(xtr.rows()));
  doc.set("test_rows", core::Json(xte.rows()));
  doc.set("features", core::Json(x.cols()));
  doc.set("classes", core::Json(classes));
  core::Json arr = core::Json::array();

  bool all_identical = true;
  for (auto& c : cases) {
    // Timing at SUGAR_THREADS=1: the speedup must come from the algorithm
    // (quantize once, add instead of search), not from the pool.
    core::set_global_threads(1);
    c.fit_only(false);  // warm
    const double t_legacy = best_seconds(kReps, [&] { c.fit_only(false); });
    c.fit_only(true);
    const double t_binned = best_seconds(kReps, [&] { c.fit_only(true); });
    const auto [d_legacy, acc_legacy] = c.eval(false);
    (void)d_legacy;  // engines pick different splits; only accuracy compares

    // Determinism gate: the binned fit digest must be bit-identical at
    // every pool width.
    std::string digests[3];
    for (std::size_t w = 0; w < 3; ++w) {
      core::set_global_threads(kWidths[w]);
      digests[w] = c.eval(true).first;
    }
    core::set_global_threads(1);
    const double acc_binned = c.eval(true).second;
    const bool identical =
        digests[0] == digests[1] && digests[1] == digests[2];
    all_identical = all_identical && identical;
    const double speedup = t_binned > 0 ? t_legacy / t_binned : 0.0;
    const double delta = acc_binned - acc_legacy;

    core::Json row = core::Json::object();
    row.set("kernel", core::Json(c.kernel));
    row.set("subtract", core::Json(c.subtract));
    row.set("histogram_bins", core::Json(kBins));
    row.set("legacy_seconds", core::Json(t_legacy));
    row.set("binned_seconds", core::Json(t_binned));
    row.set("speedup", core::Json(speedup));
    row.set("accuracy_legacy", core::Json(acc_legacy));
    row.set("accuracy_binned", core::Json(acc_binned));
    row.set("accuracy_delta", core::Json(delta));
    row.set("digest_t1", core::Json(digests[0]));
    row.set("digest_t2", core::Json(digests[1]));
    row.set("digest_t7", core::Json(digests[2]));
    row.set("identical", core::Json(identical));
    arr.push(row);
    std::printf(
        "%-11s legacy %.3fs  binned %.3fs  speedup %.2fx  acc %.4f -> %.4f "
        "(delta %+.4f)  %s\n",
        c.kernel.c_str(), t_legacy, t_binned, speedup, acc_legacy, acc_binned,
        delta, identical ? "bit-identical@1/2/7" : "WIDTH MISMATCH");
  }
  core::set_global_threads(0);  // restore SUGAR_THREADS / hardware default

  doc.set("cases", arr);
  doc.set("all_identical", core::Json(all_identical));
  std::string err;
  if (!core::atomic_write_file(path, doc.dump(2) + "\n", &err)) {
    std::fprintf(stderr, "tree-compare: artifact write failed: %s\n",
                 err.c_str());
    return 1;
  }
  std::printf("Artifact: %s\n", path.c_str());
  if (!all_identical) {
    std::fprintf(stderr,
                 "tree-compare: binned fit differs across pool widths — "
                 "determinism contract violated\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--substrate-compare") == 0) {
    if (argc != 3) {
      std::fprintf(stderr,
                   "usage: bench_micro_substrate --substrate-compare <out.json>\n");
      return 2;
    }
    return run_substrate_compare(argv[2]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--simd-compare") == 0) {
    if (argc != 3) {
      std::fprintf(stderr,
                   "usage: bench_micro_substrate --simd-compare <out.json>\n");
      return 2;
    }
    return run_simd_compare(argv[2]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--trace-compare") == 0) {
    if (argc != 3) {
      std::fprintf(stderr,
                   "usage: bench_micro_substrate --trace-compare <out.json>\n");
      return 2;
    }
    return run_trace_compare(argv[2]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--tree-compare") == 0) {
    if (argc != 3) {
      std::fprintf(stderr,
                   "usage: bench_micro_substrate --tree-compare <out.json>\n");
      return 2;
    }
    return run_tree_compare(argv[2]);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
