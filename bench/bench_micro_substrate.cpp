// google-benchmark microbenchmarks for the substrate: parser, serializer,
// checksum, flow assembly, split, featurization and pcap I/O throughput.
#include <benchmark/benchmark.h>

#include <sstream>

#include "dataset/split.h"
#include "dataset/task.h"
#include "net/checksum.h"
#include "net/flow.h"
#include "net/mutate.h"
#include "net/parser.h"
#include "net/pcap.h"
#include "replearn/featurize.h"
#include "trafficgen/datasets.h"

using namespace sugar;

namespace {

std::vector<net::Packet> sample_trace(std::size_t flows = 60) {
  trafficgen::GenOptions opts;
  opts.seed = 42;
  opts.flows_per_class = flows / 16 + 1;
  return trafficgen::generate_iscx_vpn(opts).packets;
}

const std::vector<net::Packet>& cached_trace() {
  static const std::vector<net::Packet> trace = sample_trace();
  return trace;
}

void BM_ParsePacket(benchmark::State& state) {
  const auto& trace = cached_trace();
  std::size_t i = 0, bytes = 0;
  for (auto _ : state) {
    auto outcome = net::parse_packet(trace[i % trace.size()]);
    benchmark::DoNotOptimize(outcome);
    bytes += trace[i % trace.size()].data.size();
    ++i;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ParsePacket);

void BM_Checksum1500(benchmark::State& state) {
  std::vector<std::uint8_t> buf(1500, 0xA5);
  std::size_t bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::checksum(buf));
    bytes += buf.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Checksum1500);

void BM_GenerateFlow(benchmark::State& state) {
  auto profiles = trafficgen::iscx_vpn_profiles();
  trafficgen::Rng rng(7);
  std::size_t packets = 0;
  for (auto _ : state) {
    auto pkts = trafficgen::generate_flow(profiles[2], false, rng, 0);
    packets += pkts.size();
    benchmark::DoNotOptimize(pkts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(packets));
}
BENCHMARK(BM_GenerateFlow);

void BM_FlowAssembly(benchmark::State& state) {
  const auto& trace = cached_trace();
  for (auto _ : state) {
    auto table = net::assemble_flows(trace);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_FlowAssembly);

void BM_RandomizeSeqAck(benchmark::State& state) {
  auto trace = cached_trace();
  std::mt19937_64 rng(3);
  std::size_t i = 0;
  for (auto _ : state) {
    net::randomize_seq_ack(trace[i % trace.size()], rng);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RandomizeSeqAck);

void BM_PcapRoundTrip(benchmark::State& state) {
  const auto& trace = cached_trace();
  for (auto _ : state) {
    std::stringstream ss;
    {
      net::PcapWriter writer(ss);
      writer.write_all(trace);
    }
    net::PcapReader reader(ss);
    auto back = reader.read_all();
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_PcapRoundTrip);

void BM_HeaderFeaturize(benchmark::State& state) {
  trafficgen::GenOptions opts;
  opts.seed = 9;
  opts.flows_per_class = 2;
  auto trace = trafficgen::generate_iscx_vpn(opts);
  auto ds = dataset::make_task_dataset(trace, dataset::TaskId::VpnApp);
  std::vector<std::size_t> idx(ds.size());
  std::iota(idx.begin(), idx.end(), 0);
  for (auto _ : state) {
    auto x = replearn::header_feature_matrix(ds, idx, {});
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ds.size()));
}
BENCHMARK(BM_HeaderFeaturize);

void BM_PerFlowSplit(benchmark::State& state) {
  trafficgen::GenOptions opts;
  opts.seed = 9;
  opts.flows_per_class = 4;
  auto trace = trafficgen::generate_iscx_vpn(opts);
  auto ds = dataset::make_task_dataset(trace, dataset::TaskId::VpnApp);
  for (auto _ : state) {
    dataset::SplitOptions so;
    so.policy = dataset::SplitPolicy::PerFlow;
    auto split = dataset::split_dataset(ds, so);
    benchmark::DoNotOptimize(split);
  }
}
BENCHMARK(BM_PerFlowSplit);

}  // namespace

BENCHMARK_MAIN();
