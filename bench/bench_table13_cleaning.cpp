// Table 13: the extraneous-protocol cleaning census. Expected shape:
// link-local and network-management protocols dominate; ISCX carries ~5%
// spurious packets, USTC ~10%, CSTN none (pre-cleaned).
#include "bench_common.h"

using namespace sugar;

int main(int argc, char** argv) {
  auto sup = bench::make_supervisor("table13", argc, argv);
  core::BenchmarkEnv env;

  const std::pair<dataset::SourceDataset, const char*> sources[] = {
      {dataset::SourceDataset::IscxVpn, "ISCX-VPN"},
      {dataset::SourceDataset::UstcTfc, "USTC-TFC"},
      {dataset::SourceDataset::CstnTls, "CSTN-TLS1.3"},
  };
  constexpr auto kCats = static_cast<std::size_t>(net::SpuriousCategory::kCount);

  // One census cell per source dataset; the per-category counts travel in
  // the cell's `extra` so a resumed run can still render the table.
  std::vector<core::CellOutcome> outcomes;
  for (auto [src, name] : sources) {
    core::CellSpec spec{"table13", name, "census",
                        core::generic_cell_key({"table13", name})};
    outcomes.push_back(sup.run_cell(spec, [&, src = src](core::CellContext&) {
      const auto& r = env.cleaning_report(src);
      core::CellSummary s;
      core::Json cats = core::Json::array();
      for (std::size_t cat = 0; cat < kCats; ++cat)
        cats.push(core::Json(r.removed_by_category[cat]));
      s.extra.set("removed_by_category", cats);
      s.extra.set("total_packets", core::Json(r.total_packets));
      s.extra.set("removed_malformed", core::Json(r.removed_malformed));
      s.extra.set("removed_spurious_total", core::Json(r.removed_spurious_total()));
      return s;
    }));
  }

  auto extra_num = [](const core::CellOutcome& o, const char* key) -> double {
    const core::Json* v = o.summary.extra.find(key);
    return v ? v->number_or(0) : 0;
  };
  auto category_count = [](const core::CellOutcome& o, std::size_t cat) -> double {
    const core::Json* cats = o.summary.extra.find("removed_by_category");
    if (!cats || cat >= cats->items().size()) return 0;
    return cats->items()[cat].number_or(0);
  };
  auto count_cell = [&](const core::CellOutcome& o, double n) {
    if (!o.ok()) return core::RunSupervisor::format_cell(o);
    if (n == 0) return std::string("0");
    double total = extra_num(o, "total_packets");
    char buf[48];
    std::snprintf(buf, sizeof buf, "%zu (%.2f%%)", static_cast<std::size_t>(n),
                  total > 0 ? 100.0 * n / total : 0.0);
    return std::string(buf);
  };

  core::MarkdownTable table{{"Category", "ISCX-VPN", "USTC-TFC", "CSTN-TLS1.3"}};

  for (std::size_t cat = 1; cat < kCats; ++cat) {
    std::vector<std::string> row{
        net::to_string(static_cast<net::SpuriousCategory>(cat))};
    bool any = false;
    for (const auto& o : outcomes) {
      double n = category_count(o, cat);
      row.push_back(count_cell(o, n));
      any = any || !o.ok() || n > 0;
    }
    if (any) table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"TOTAL"};
    for (const auto& o : outcomes)
      row.push_back(count_cell(o, extra_num(o, "removed_spurious_total")));
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"Malformed frames"};
    for (const auto& o : outcomes)
      row.push_back(count_cell(o, extra_num(o, "removed_malformed")));
    table.add_row(std::move(row));
  }

  core::print_table("Table 13 — Extraneous-protocol filter census", table);

  // Ingestion summaries only for the sources whose census succeeded (their
  // reports are cached by now; a failed source would just throw again).
  std::vector<const dataset::CleaningReport*> reports;
  for (std::size_t i = 0; i < outcomes.size(); ++i)
    if (outcomes[i].status == core::CellStatus::kOk)
      reports.push_back(&env.cleaning_report(sources[i].first));
  if (!reports.empty()) {
    std::printf("\nIngestion health:\n");
    core::print_ingest_summaries(reports);
  }
  return sup.finalize() ? 0 : 1;
}
