// Table 13: the extraneous-protocol cleaning census. Expected shape:
// link-local and network-management protocols dominate; ISCX carries ~5%
// spurious packets, USTC ~10%, CSTN none (pre-cleaned).
#include "bench_common.h"

using namespace sugar;

int main() {
  core::BenchmarkEnv env;

  const std::pair<dataset::SourceDataset, const char*> sources[] = {
      {dataset::SourceDataset::IscxVpn, "ISCX-VPN"},
      {dataset::SourceDataset::UstcTfc, "USTC-TFC"},
      {dataset::SourceDataset::CstnTls, "CSTN-TLS1.3"},
  };

  core::MarkdownTable table{{"Category", "ISCX-VPN", "USTC-TFC", "CSTN-TLS1.3"}};

  // Collect all three reports (also forces generation+cleaning).
  std::vector<const dataset::CleaningReport*> reports;
  for (auto [src, name] : sources) reports.push_back(&env.cleaning_report(src));

  auto cell = [](const dataset::CleaningReport& r, std::size_t cat) {
    std::size_t n = r.removed_by_category[cat];
    if (n == 0) return std::string("0");
    double pct = 100.0 * static_cast<double>(n) / static_cast<double>(r.total_packets);
    char buf[48];
    std::snprintf(buf, sizeof buf, "%zu (%.2f%%)", n, pct);
    return std::string(buf);
  };

  for (std::size_t cat = 1;
       cat < static_cast<std::size_t>(net::SpuriousCategory::kCount); ++cat) {
    std::vector<std::string> row{
        net::to_string(static_cast<net::SpuriousCategory>(cat))};
    bool any = false;
    for (const auto* r : reports) {
      row.push_back(cell(*r, cat));
      any = any || r->removed_by_category[cat] > 0;
    }
    if (any) table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"TOTAL"};
    for (const auto* r : reports) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%zu (%.2f%%)", r->removed_spurious_total(),
                    100.0 * r->removed_spurious_fraction());
      row.emplace_back(buf);
    }
    table.add_row(std::move(row));
  }

  {
    std::vector<std::string> row{"Malformed frames"};
    for (const auto* r : reports) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%zu (%.2f%%)", r->removed_malformed,
                    100.0 * r->malformed_fraction());
      row.emplace_back(buf);
    }
    table.add_row(std::move(row));
  }

  core::print_table("Table 13 — Extraneous-protocol filter census", table);
  std::printf("\nIngestion health:\n");
  core::print_ingest_summaries(reports);
  return 0;
}
