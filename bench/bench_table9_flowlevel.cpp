// Table 9: flow-level classification (flows with >= 5 packets, per-flow
// split). Expected shape: frozen encoders struggle; unfreezing recovers
// some; Pcap-Encoder with a frozen encoder and a first-5-packets majority
// vote stays competitive with the unfrozen flow models.
#include "bench_common.h"

using namespace sugar;

int main(int argc, char** argv) {
  auto sup = bench::make_supervisor("table9", argc, argv);
  core::BenchmarkEnv env;

  core::MarkdownTable table{{"Model", "VPN-app frozen", "VPN-app unfrozen",
                             "TLS-120 frozen", "TLS-120 unfrozen"}};

  for (auto kind : replearn::all_model_kinds()) {
    std::vector<std::string> row{replearn::to_string(kind)};
    for (auto task : bench::kHardTasks) {
      for (bool frozen : {true, false}) {
        if (kind == replearn::ModelKind::PcapEncoder && !frozen) {
          // The paper only evaluates Pcap-Encoder frozen (majority vote).
          row.push_back("-");
          continue;
        }
        core::ScenarioOptions opts;
        opts.frozen = frozen;
        auto outcome = bench::run_flow_cell(
            sup, env, "table9", replearn::to_string(kind),
            dataset::to_string(task) + (frozen ? " frozen" : " unfrozen"), task,
            kind, opts);
        row.push_back(bench::cell_ac_f1(outcome));
      }
    }
    table.add_row(std::move(row));
  }

  core::print_table("Table 9 — Flow-level classification (per-flow split, AC/F1)",
                    table);
  return sup.finalize() ? 0 : 1;
}
