// Table 9: flow-level classification (flows with >= 5 packets, per-flow
// split). Expected shape: frozen encoders struggle; unfreezing recovers
// some; Pcap-Encoder with a frozen encoder and a first-5-packets majority
// vote stays competitive with the unfrozen flow models.
#include "bench_common.h"

using namespace sugar;

int main() {
  core::BenchmarkEnv env;

  core::MarkdownTable table{{"Model", "VPN-app frozen", "VPN-app unfrozen",
                             "TLS-120 frozen", "TLS-120 unfrozen"}};

  for (auto kind : replearn::all_model_kinds()) {
    std::vector<std::string> row{replearn::to_string(kind)};
    for (auto task : bench::kHardTasks) {
      for (bool frozen : {true, false}) {
        if (kind == replearn::ModelKind::PcapEncoder && !frozen) {
          // The paper only evaluates Pcap-Encoder frozen (majority vote).
          row.push_back("-");
          continue;
        }
        core::ScenarioOptions opts;
        opts.frozen = frozen;
        auto r = core::run_flow_scenario(env, task, kind, opts);
        row.push_back(bench::ac_f1(r.metrics));
        std::fprintf(stderr, "[table9] %s %s %s: %s (%zu train / %zu test flows)\n",
                     replearn::to_string(kind).c_str(),
                     dataset::to_string(task).c_str(), frozen ? "frozen" : "unfrozen",
                     r.metrics.to_string().c_str(), r.n_train, r.n_test);
      }
    }
    table.add_row(std::move(row));
  }

  core::print_table("Table 9 — Flow-level classification (per-flow split, AC/F1)",
                    table);
  return 0;
}
