// Scenario-diversity benchmark #1: temporal drift and cross-family
// transfer (VPN-app, per-flow split). Every cell trains on the canonical
// epoch-0 / family-A dataset and evaluates on a shifted one:
//
//   drift     rows: RF / RF-noip / frozen NetMamba
//             cols: epoch0 (in-distribution) .. epochN — the held-out
//             partition is regenerated from a drifted profile set (TTL
//             decays, windows grow, MSS clamps down, IATs stretch).
//   transfer  cols: A->A / A->B / B->B — family B re-parameterizes
//             subnets, TTL defaults, windows and MTU caps; A->B is the
//             cross-stack generalization cell, B->B its in-distribution
//             control.
//
// A final `curve` cell assembles the per-model epoch->accuracy series so
// the artifact carries the drift curve directly (extra.drift_curve) and
// the golden gate can pin its normalized form. Expected shape: all models
// degrade with drift epoch; the shallow RF's decay is the paper's point —
// header shortcuts are brittle under distribution shift.
//
// Extra flags on top of the common bench CLI:
//   --drift-epochs <n>   evaluate test epochs 1..n (default 3)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace sugar;

namespace {

struct DriftCliOptions {
  int drift_epochs = 3;
};

bool parse_drift_flags(const std::vector<std::string>& args, DriftCliOptions& out,
                       std::string& error) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--drift-epochs") {
      if (i + 1 >= args.size()) {
        error = "missing value for " + arg;
        return false;
      }
      char* end = nullptr;
      long v = std::strtol(args[++i].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || args[i].empty() || v < 1 || v > 8) {
        error = "malformed or out-of-range value for " + arg + " '" + args[i] + "'";
        return false;
      }
      out.drift_epochs = static_cast<int>(v);
    } else {
      error = "unknown flag " + arg;
      return false;
    }
  }
  return true;
}

/// The three-model grid every scenario cell iterates: the shallow RF with
/// and without IP features, plus the cheapest frozen deep encoder.
struct ModelSpec {
  const char* name;
  bool shallow;
  bool include_ip;  // shallow only
};

const std::vector<ModelSpec> kModels = {
    {"RF", true, true},
    {"RF-noip", true, false},
    {"NetMamba-frozen", false, false},
};

/// Per-cell provenance block (`extra.drift`) so a reader of the artifact
/// can attribute each accuracy to its train/test distribution pair.
core::Json drift_extra(const core::ScenarioOptions& opts) {
  core::Json d = core::Json::object();
  d.set("train_epoch", core::Json(opts.train_variant.drift_epoch));
  d.set("test_epoch", core::Json(opts.test_variant.drift_epoch));
  d.set("train_family", core::Json(opts.train_variant.family));
  d.set("test_family", core::Json(opts.test_variant.family));
  return d;
}

/// Shallow cells must fold the variant pair into their journal key
/// themselves — generic_cell_key knows nothing about ScenarioOptions.
std::string shallow_variant_key(dataset::TaskId task, core::ShallowKind kind,
                                bool include_ip, const core::ScenarioOptions& opts) {
  return core::generic_cell_key(
      {"shallow", core::to_string(kind), dataset::to_string(task),
       dataset::to_string(opts.split), include_ip ? "ip" : "noip",
       std::to_string(opts.seed), opts.train_variant.tag(),
       opts.test_variant.tag()});
}

void add_model_cell(bench::CellBatch& batch, core::BenchmarkEnv& env,
                    dataset::TaskId task, const ModelSpec& model,
                    std::string table, std::string col,
                    const core::ScenarioOptions& opts) {
  core::CellSpec spec{std::move(table), model.name, std::move(col), {}};
  if (model.shallow) {
    spec.key = shallow_variant_key(task, core::ShallowKind::RandomForest,
                                   model.include_ip, opts);
    batch.add(std::move(spec),
              [&env, task, include_ip = model.include_ip, opts](core::CellContext& ctx) {
                core::ScenarioOptions o = opts;
                ctx.apply(o);
                auto s = core::summarize(core::run_shallow_scenario(
                    env, task, core::ShallowKind::RandomForest, include_ip, o));
                s.extra.set("drift", drift_extra(opts));
                return s;
              });
  } else {
    spec.key = core::scenario_cell_key(
        task, "drift:" + replearn::to_string(replearn::ModelKind::NetMamba), opts);
    batch.add(std::move(spec), [&env, task, opts](core::CellContext& ctx) {
      core::ScenarioOptions o = opts;
      ctx.apply(o);
      auto s = core::summarize(core::run_packet_scenario(
          env, task, replearn::ModelKind::NetMamba, o));
      s.extra.set("drift", drift_extra(opts));
      return s;
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  std::vector<std::string> extra;
  auto cfg = core::parse_bench_cli("drift_transfer", argc, argv, error, &extra);
  DriftCliOptions cli;
  if (cfg && !parse_drift_flags(extra, cli, error)) cfg.reset();
  if (!cfg) {
    std::fprintf(stderr, "bench_drift_transfer: %s\n%s", error.c_str(),
                 core::bench_usage("drift_transfer").c_str());
    std::fprintf(stderr, "  --drift-epochs <n>   evaluate test epochs 1..n (default 3)\n");
    return 2;
  }
  core::RunSupervisor sup(std::move(*cfg));
  core::BenchmarkEnv env;
  const auto task = dataset::TaskId::VpnApp;

  // --- Drift ladder: train on epoch 0, test on epochs 0..N. -------------
  bench::CellBatch batch;
  std::vector<std::string> epoch_cols;
  for (int e = 0; e <= cli.drift_epochs; ++e) {
    epoch_cols.push_back("epoch" + std::to_string(e));
    core::ScenarioOptions opts;
    opts.split = dataset::SplitPolicy::PerFlow;
    opts.test_variant.drift_epoch = e;
    for (const auto& model : kModels)
      add_model_cell(batch, env, task, model, "drift", epoch_cols.back(), opts);
  }

  // --- Cross-family transfer: A->A control, A->B transfer, B->B control.
  const std::vector<std::pair<int, int>> family_pairs = {{0, 0}, {0, 1}, {1, 1}};
  std::vector<std::string> transfer_cols;
  for (auto [train_fam, test_fam] : family_pairs) {
    transfer_cols.push_back(std::string(1, static_cast<char>('A' + train_fam)) +
                            "->" + std::string(1, static_cast<char>('A' + test_fam)));
    core::ScenarioOptions opts;
    opts.split = dataset::SplitPolicy::PerFlow;
    opts.train_variant.family = train_fam;
    opts.test_variant.family = test_fam;
    for (const auto& model : kModels)
      add_model_cell(batch, env, task, model, "transfer", transfer_cols.back(), opts);
  }

  auto outcomes = batch.run(sup);
  const std::size_t n_models = kModels.size();
  const std::size_t n_epochs = epoch_cols.size();
  auto drift_outcome = [&](std::size_t epoch, std::size_t model) -> const core::CellOutcome& {
    return outcomes[epoch * n_models + model];
  };
  auto transfer_outcome = [&](std::size_t pair, std::size_t model) -> const core::CellOutcome& {
    return outcomes[n_epochs * n_models + pair * n_models + model];
  };

  // --- Curve cell: the per-model epoch->accuracy series, journaled under
  // a key derived from every constituent cell so a config change
  // invalidates it alongside the cells it summarizes.
  std::string curve_salt = "curve;epochs=" + std::to_string(cli.drift_epochs);
  auto curve = sup.run_cell(
      {"drift", "curve", "all",
       core::generic_cell_key({"drift_curve", dataset::to_string(task),
                               std::to_string(cli.drift_epochs), curve_salt})},
      [&](core::CellContext&) {
        core::CellSummary s;
        core::Json curves = core::Json::object();
        for (std::size_t m = 0; m < n_models; ++m) {
          core::Json series = core::Json::array();
          for (std::size_t e = 0; e < n_epochs; ++e) {
            const auto& o = drift_outcome(e, m);
            if (!o.ok()) continue;
            core::Json point = core::Json::object();
            point.set("epoch", core::Json(static_cast<int>(e)));
            point.set("accuracy", core::Json(o.summary.accuracy));
            series.push(std::move(point));
          }
          curves.set(kModels[m].name, std::move(series));
        }
        s.extra.set("drift_curve", std::move(curves));
        return s;
      });

  // --- Render. ----------------------------------------------------------
  {
    std::vector<std::string> header = {"Model"};
    header.insert(header.end(), epoch_cols.begin(), epoch_cols.end());
    core::MarkdownTable table{header};
    for (std::size_t m = 0; m < n_models; ++m) {
      std::vector<std::string> row = {kModels[m].name};
      for (std::size_t e = 0; e < n_epochs; ++e)
        row.push_back(bench::cell_pct_ac(drift_outcome(e, m)));
      table.add_row(row);
    }
    core::print_table(
        "Drift — accuracy (%) when the held-out traffic drifts N epochs from "
        "the training distribution (VPN-app, per-flow split)",
        table);
  }
  {
    std::vector<std::string> header = {"Model"};
    header.insert(header.end(), transfer_cols.begin(), transfer_cols.end());
    core::MarkdownTable table{header};
    for (std::size_t m = 0; m < n_models; ++m) {
      std::vector<std::string> row = {kModels[m].name};
      for (std::size_t p = 0; p < family_pairs.size(); ++p)
        row.push_back(bench::cell_pct_ac(transfer_outcome(p, m)));
      table.add_row(row);
    }
    core::print_table(
        "Transfer — accuracy (%) across synthetic dataset families (A: "
        "canonical stacks, B: re-parameterized subnets/TTL/window/MTU)",
        table);
  }
  if (!curve.ok())
    std::fprintf(stderr, "bench_drift_transfer: curve cell failed: %s\n",
                 curve.message.c_str());

  bench::print_ingest(env, {task});
  return sup.finalize() ? 0 : 1;
}
