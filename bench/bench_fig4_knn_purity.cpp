// Figure 4: 5-NN purity of ET-BERT-analog embeddings on TLS-120 test
// packets (per-packet split, as in the paper). Expected shape: the frozen
// embedding puts most packets next to *no* same-class neighbour; after
// unfrozen fine-tuning the embedding collapses onto the (leaky) task and
// most packets have all 5 neighbours of their class.
#include "bench_common.h"

using namespace sugar;

int main() {
  core::BenchmarkEnv env;
  const auto task = dataset::TaskId::Tls120;
  const auto model = replearn::ModelKind::EtBert;

  core::MarkdownTable table{{"Same-class neighbours (of 5)", "Frozen", "Unfrozen"}};
  ml::PurityHistogram hist[2];

  for (int i = 0; i < 2; ++i) {
    core::ScenarioOptions opts;
    opts.split = dataset::SplitPolicy::PerPacket;
    opts.frozen = i == 0;
    opts.export_embeddings = 2000;
    auto r = core::run_packet_scenario(env, task, model, opts);
    hist[i] = core::purity_of(r);
    std::fprintf(stderr, "[fig4] %s: %s, mean purity %.3f\n",
                 opts.frozen ? "frozen" : "unfrozen", r.metrics.to_string().c_str(),
                 hist[i].mean_purity);
  }

  for (int k = 0; k <= 5; ++k) {
    table.add_row({std::to_string(k),
                   core::MarkdownTable::pct(hist[0].histogram[static_cast<std::size_t>(k)]),
                   core::MarkdownTable::pct(hist[1].histogram[static_cast<std::size_t>(k)])});
  }
  table.add_row({"mean purity", core::MarkdownTable::pct(hist[0].mean_purity),
                 core::MarkdownTable::pct(hist[1].mean_purity)});

  core::print_table(
      "Figure 4 — 5-NN purity of ET-BERT-analog embeddings (TLS-120, per-packet "
      "split, % of points)",
      table);
  return 0;
}
