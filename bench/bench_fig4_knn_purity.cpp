// Figure 4: 5-NN purity of ET-BERT-analog embeddings on TLS-120 test
// packets (per-packet split, as in the paper). Expected shape: the frozen
// embedding puts most packets next to *no* same-class neighbour; after
// unfrozen fine-tuning the embedding collapses onto the (leaky) task and
// most packets have all 5 neighbours of their class.
#include "bench_common.h"

using namespace sugar;

int main(int argc, char** argv) {
  auto sup = bench::make_supervisor("fig4", argc, argv);
  core::BenchmarkEnv env;
  const auto task = dataset::TaskId::Tls120;
  const auto model = replearn::ModelKind::EtBert;

  core::MarkdownTable table{{"Same-class neighbours (of 5)", "Frozen", "Unfrozen"}};
  core::CellOutcome outcomes[2];

  for (int i = 0; i < 2; ++i) {
    core::ScenarioOptions opts;
    opts.split = dataset::SplitPolicy::PerPacket;
    opts.frozen = i == 0;
    opts.export_embeddings = 2000;
    // The purity histogram rides in `extra` so a journaled cell still
    // renders without recomputing the embeddings.
    core::CellSpec spec{"fig4", opts.frozen ? "frozen" : "unfrozen", "purity",
                        core::scenario_cell_key(task, "etbert:purity", opts)};
    outcomes[i] = sup.run_cell(spec, [&](core::CellContext& ctx) {
      core::ScenarioOptions o = opts;
      ctx.apply(o);
      auto r = core::run_packet_scenario(env, task, model, o);
      auto hist = core::purity_of(r);
      auto s = core::summarize(r);
      core::Json h = core::Json::array();
      for (double bin : hist.histogram) h.push(core::Json(bin));
      s.extra.set("histogram", h);
      s.extra.set("mean_purity", core::Json(hist.mean_purity));
      return s;
    });
  }

  auto hist_cell = [](const core::CellOutcome& o, std::size_t k) {
    if (!o.ok()) return core::RunSupervisor::format_cell(o);
    const core::Json* h = o.summary.extra.find("histogram");
    double v = h && k < h->items().size() ? h->items()[k].number_or(0) : 0;
    return core::MarkdownTable::pct(v);
  };
  auto mean_cell = [](const core::CellOutcome& o) {
    if (!o.ok()) return core::RunSupervisor::format_cell(o);
    const core::Json* m = o.summary.extra.find("mean_purity");
    return core::MarkdownTable::pct(m ? m->number_or(0) : 0);
  };

  for (std::size_t k = 0; k <= 5; ++k)
    table.add_row({std::to_string(k), hist_cell(outcomes[0], k),
                   hist_cell(outcomes[1], k)});
  table.add_row({"mean purity", mean_cell(outcomes[0]), mean_cell(outcomes[1])});

  core::print_table(
      "Figure 4 — 5-NN purity of ET-BERT-analog embeddings (TLS-120, per-packet "
      "split, % of points)",
      table);
  return sup.finalize() ? 0 : 1;
}
