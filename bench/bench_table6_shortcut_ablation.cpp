// Table 6: where does the per-packet miracle come from? ET-BERT analog on
// TLS-120, unfrozen. Randomizing SeqNo/AckNo and TCP timestamps at test
// time collapses the result; randomizing them in train+test partially
// recovers (the model hunts for other patterns); discarding pre-training
// entirely changes almost nothing; the honest per-flow split stays poor.
#include "bench_common.h"

using namespace sugar;

int main(int argc, char** argv) {
  auto sup = bench::make_supervisor("table6", argc, argv);
  core::BenchmarkEnv env;
  const auto model = replearn::ModelKind::EtBert;
  const auto task = dataset::TaskId::Tls120;

  core::MarkdownTable table{{"Scenario", "Dataset", "AC", "F1"}};

  auto run = [&](const char* scenario, const char* variant,
                 const core::ScenarioOptions& opts) {
    auto outcome =
        bench::run_packet_cell(sup, env, "table6", scenario, variant, task, model, opts);
    table.add_row({scenario, variant, bench::cell_pct_ac(outcome),
                   bench::cell_pct_f1(outcome)});
  };

  core::ScenarioOptions base;
  base.split = dataset::SplitPolicy::PerPacket;
  base.frozen = false;
  run("Per-packet split", "Original", base);

  core::ScenarioOptions test_only = base;
  test_only.test_ablation = dataset::AblationSpec::without_implicit_ids();
  run("Per-packet split", "w/o SeqNo/AckNo w/o Timestamp (only test)", test_only);

  core::ScenarioOptions both = base;
  both.train_ablation = dataset::AblationSpec::without_implicit_ids();
  both.test_ablation = dataset::AblationSpec::without_implicit_ids();
  run("Per-packet split", "w/o SeqNo/AckNo w/o Timestamp (train+test)", both);

  core::ScenarioOptions no_pretrain = base;
  no_pretrain.discard_pretraining = true;
  run("Per-packet split", "w/o Pre-training", no_pretrain);

  core::ScenarioOptions per_flow;
  per_flow.split = dataset::SplitPolicy::PerFlow;
  per_flow.frozen = false;
  run("Per-flow split", "Original", per_flow);

  core::print_table(
      "Table 6 — Implicit-flow-id ablation, unfrozen ET-BERT analog, TLS-120",
      table);
  return sup.finalize() ? 0 : 1;
}
