// Table 3: packet classification with the paper's recommended methodology —
// per-flow split, frozen encoders — across all six tasks and all six
// models. Expected shape: every surveyed model collapses on the hard tasks;
// Pcap-Encoder stays best; binary tasks stay easy for everyone.
#include "bench_common.h"

using namespace sugar;

int main() {
  core::BenchmarkEnv env;

  std::vector<std::string> header{"Model"};
  for (auto task : bench::kAllTasks)
    header.push_back(dataset::to_string(task) + " AC/F1");
  core::MarkdownTable table{header};

  for (auto kind : replearn::all_model_kinds()) {
    std::vector<std::string> row{replearn::to_string(kind)};
    for (auto task : bench::kAllTasks) {
      core::ScenarioOptions opts;
      opts.split = dataset::SplitPolicy::PerFlow;
      opts.frozen = true;
      auto r = core::run_packet_scenario(env, task, kind, opts);
      row.push_back(bench::ac_f1(r.metrics));
      std::fprintf(stderr, "[table3] %s %s: %s (train %.1fs, audit %s)\n",
                   replearn::to_string(kind).c_str(),
                   dataset::to_string(task).c_str(), r.metrics.to_string().c_str(),
                   r.train_seconds, r.audit.clean() ? "clean" : "LEAKY");
    }
    table.add_row(std::move(row));
  }

  core::print_table(
      "Table 3 — Packet classification, per-flow split, frozen encoders", table);
  bench::print_ingest(env, bench::kAllTasks);
  return 0;
}
