// Table 3: packet classification with the paper's recommended methodology —
// per-flow split, frozen encoders — across all six tasks and all six
// models. Expected shape: every surveyed model collapses on the hard tasks;
// Pcap-Encoder stays best; binary tasks stay easy for everyone.
#include "bench_common.h"

using namespace sugar;

int main(int argc, char** argv) {
  auto sup = bench::make_supervisor("table3", argc, argv);
  core::BenchmarkEnv env;

  std::vector<std::string> header{"Model"};
  for (auto task : bench::kAllTasks)
    header.push_back(dataset::to_string(task) + " AC/F1");
  core::MarkdownTable table{header};

  for (auto kind : replearn::all_model_kinds()) {
    std::vector<std::string> row{replearn::to_string(kind)};
    for (auto task : bench::kAllTasks) {
      core::ScenarioOptions opts;
      opts.split = dataset::SplitPolicy::PerFlow;
      opts.frozen = true;
      auto outcome =
          bench::run_packet_cell(sup, env, "table3", replearn::to_string(kind),
                                 dataset::to_string(task), task, kind, opts);
      row.push_back(bench::cell_ac_f1(outcome));
    }
    table.add_row(std::move(row));
  }

  core::print_table(
      "Table 3 — Packet classification, per-flow split, frozen encoders", table);
  bench::print_ingest(env, bench::kAllTasks);
  return sup.finalize() ? 0 : 1;
}
