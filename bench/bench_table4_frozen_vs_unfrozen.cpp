// Table 4: per-flow split, frozen vs unfrozen encoders on the two hardest
// tasks. Expected shape: unfreezing helps every surveyed model but does not
// rescue them; Pcap-Encoder's unfreeze gain is the smallest because its
// pre-trained representation already carries the usable signal.
#include "bench_common.h"

using namespace sugar;

int main(int argc, char** argv) {
  auto sup = bench::make_supervisor("table4", argc, argv);
  core::BenchmarkEnv env;

  core::MarkdownTable table{{"Model", "VPN-app frozen", "VPN-app unfrozen",
                             "TLS-120 frozen", "TLS-120 unfrozen"}};

  for (auto kind : replearn::all_model_kinds()) {
    std::vector<std::string> row{replearn::to_string(kind)};
    for (auto task : bench::kHardTasks) {
      for (bool frozen : {true, false}) {
        core::ScenarioOptions opts;
        opts.split = dataset::SplitPolicy::PerFlow;
        opts.frozen = frozen;
        auto outcome = bench::run_packet_cell(
            sup, env, "table4", replearn::to_string(kind),
            dataset::to_string(task) + (frozen ? " frozen" : " unfrozen"), task,
            kind, opts);
        row.push_back(bench::cell_ac_f1(outcome));
      }
    }
    table.add_row(std::move(row));
  }

  core::print_table("Table 4 — Per-flow split, frozen vs unfrozen encoders (AC/F1)",
                    table);
  return sup.finalize() ? 0 : 1;
}
