// Table 4: per-flow split, frozen vs unfrozen encoders on the two hardest
// tasks. Expected shape: unfreezing helps every surveyed model but does not
// rescue them; Pcap-Encoder's unfreeze gain is the smallest because its
// pre-trained representation already carries the usable signal.
#include "bench_common.h"

using namespace sugar;

int main() {
  core::BenchmarkEnv env;

  core::MarkdownTable table{{"Model", "VPN-app frozen", "VPN-app unfrozen",
                             "TLS-120 frozen", "TLS-120 unfrozen"}};

  for (auto kind : replearn::all_model_kinds()) {
    std::vector<std::string> row{replearn::to_string(kind)};
    for (auto task : bench::kHardTasks) {
      for (bool frozen : {true, false}) {
        core::ScenarioOptions opts;
        opts.split = dataset::SplitPolicy::PerFlow;
        opts.frozen = frozen;
        auto r = core::run_packet_scenario(env, task, kind, opts);
        row.push_back(bench::ac_f1(r.metrics));
        std::fprintf(stderr, "[table4] %s %s %s: %s\n",
                     replearn::to_string(kind).c_str(),
                     dataset::to_string(task).c_str(), frozen ? "frozen" : "unfrozen",
                     r.metrics.to_string().c_str());
      }
    }
    table.add_row(std::move(row));
  }

  core::print_table("Table 4 — Per-flow split, frozen vs unfrozen encoders (AC/F1)",
                    table);
  return 0;
}
