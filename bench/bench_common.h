// Shared helpers for the per-table bench binaries.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/env.h"
#include "core/pipeline.h"
#include "core/report.h"

namespace sugar::bench {

inline std::string ac_f1(const ml::Metrics& m) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f / %.1f", 100 * m.accuracy, 100 * m.macro_f1);
  return buf;
}

inline const std::vector<dataset::TaskId> kAllTasks = {
    dataset::TaskId::VpnBinary, dataset::TaskId::VpnService,
    dataset::TaskId::VpnApp,    dataset::TaskId::UstcBinary,
    dataset::TaskId::UstcApp,   dataset::TaskId::Tls120,
};

inline const std::vector<dataset::TaskId> kHardTasks = {
    dataset::TaskId::VpnApp,
    dataset::TaskId::Tls120,
};

/// Prints the ingestion-health line for every source dataset the given tasks
/// draw from; scenario tables append this so capture damage (malformed
/// frames) is visible next to the accuracy numbers it may have biased.
inline void print_ingest(core::BenchmarkEnv& env,
                         const std::vector<dataset::TaskId>& tasks) {
  std::vector<dataset::SourceDataset> seen;
  std::vector<const dataset::CleaningReport*> reports;
  for (auto task : tasks) {
    auto src = dataset::source_of(task);
    if (std::find(seen.begin(), seen.end(), src) != seen.end()) continue;
    seen.push_back(src);
    reports.push_back(&env.cleaning_report(src));
  }
  std::printf("\nIngestion health:\n");
  core::print_ingest_summaries(reports);
}

}  // namespace sugar::bench
