// Shared helpers for the per-table bench binaries. Every bench runs its
// cells through a core::RunSupervisor (watchdog, divergence retry,
// checkpoint/resume, BENCH_<table>.json artifact); the helpers here wire
// the common cell shapes (packet / flow / shallow scenario) into it.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "core/env.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "core/supervisor.h"

namespace sugar::bench {

inline std::string ac_f1(const ml::Metrics& m) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f / %.1f", 100 * m.accuracy, 100 * m.macro_f1);
  return buf;
}

/// Parses the strict bench CLI (--json / --resume / --cell-timeout-s /
/// --max-retries); malformed or unknown flags print usage and exit 2.
inline core::RunSupervisor make_supervisor(std::string_view bench_name, int argc,
                                           const char* const* argv) {
  std::string error;
  auto cfg = core::parse_bench_cli(bench_name, argc, argv, error);
  if (!cfg) {
    std::fprintf(stderr, "bench_%.*s: %s\n%s",
                 static_cast<int>(bench_name.size()), bench_name.data(),
                 error.c_str(), core::bench_usage(bench_name).c_str());
    std::exit(2);
  }
  return core::RunSupervisor(std::move(*cfg));
}

/// A batch of independent cells for RunSupervisor::run_cells — with
/// `--parallel-cells N` up to N of them execute concurrently, each keeping
/// the full per-cell boundary (watchdog, retry, journal). The artifact
/// cells[] order follows add() order regardless of completion order.
struct CellBatch {
  std::vector<core::CellSpec> specs;
  std::vector<core::RunSupervisor::CellFn> fns;

  void add(core::CellSpec spec, core::RunSupervisor::CellFn fn) {
    specs.push_back(std::move(spec));
    fns.push_back(std::move(fn));
  }

  [[nodiscard]] std::vector<core::CellOutcome> run(core::RunSupervisor& sup) {
    return sup.run_cells(specs, fns);
  }
};

/// One packet-scenario cell through the supervisor boundary.
inline core::CellOutcome run_packet_cell(core::RunSupervisor& sup,
                                         core::BenchmarkEnv& env, std::string table,
                                         std::string row, std::string col,
                                         dataset::TaskId task,
                                         replearn::ModelKind kind,
                                         const core::ScenarioOptions& opts) {
  core::CellSpec spec{std::move(table), std::move(row), std::move(col),
                      core::scenario_cell_key(task, replearn::to_string(kind), opts)};
  return sup.run_cell(spec, [&](core::CellContext& ctx) {
    core::ScenarioOptions o = opts;
    ctx.apply(o);
    return core::summarize(core::run_packet_scenario(env, task, kind, o));
  });
}

/// One flow-scenario cell (Table 9).
inline core::CellOutcome run_flow_cell(core::RunSupervisor& sup,
                                       core::BenchmarkEnv& env, std::string table,
                                       std::string row, std::string col,
                                       dataset::TaskId task, replearn::ModelKind kind,
                                       const core::ScenarioOptions& opts,
                                       std::size_t min_flow_len = 5) {
  core::CellSpec spec{
      std::move(table), std::move(row), std::move(col),
      core::scenario_cell_key(task, "flow:" + replearn::to_string(kind), opts)};
  return sup.run_cell(spec, [&](core::CellContext& ctx) {
    core::ScenarioOptions o = opts;
    ctx.apply(o);
    return core::summarize(core::run_flow_scenario(env, task, kind, o, min_flow_len));
  });
}

/// One shallow-baseline cell (Table 8, Figs 1/5/6).
inline core::CellOutcome run_shallow_cell(core::RunSupervisor& sup,
                                          core::BenchmarkEnv& env, std::string table,
                                          std::string row, std::string col,
                                          dataset::TaskId task, core::ShallowKind kind,
                                          bool include_ip,
                                          const core::ScenarioOptions& opts) {
  core::CellSpec spec{
      std::move(table), std::move(row), std::move(col),
      core::generic_cell_key({"shallow", core::to_string(kind),
                              dataset::to_string(task), dataset::to_string(opts.split),
                              include_ip ? "ip" : "noip", std::to_string(opts.seed)})};
  return sup.run_cell(spec, [&](core::CellContext& ctx) {
    core::ScenarioOptions o = opts;
    ctx.apply(o);
    return core::summarize(core::run_shallow_scenario(env, task, kind, include_ip, o));
  });
}

/// "AC / F1" cell text, or FAILED(<reason>).
inline std::string cell_ac_f1(const core::CellOutcome& o) {
  return core::RunSupervisor::format_cell(o);
}

/// Accuracy-as-percent cell text, or FAILED(<reason>).
inline std::string cell_pct_ac(const core::CellOutcome& o) {
  return core::RunSupervisor::format_cell(
      o, core::MarkdownTable::pct(o.summary.accuracy));
}

/// Macro-F1-as-percent cell text, or FAILED(<reason>).
inline std::string cell_pct_f1(const core::CellOutcome& o) {
  return core::RunSupervisor::format_cell(
      o, core::MarkdownTable::pct(o.summary.macro_f1));
}

inline const std::vector<dataset::TaskId> kAllTasks = {
    dataset::TaskId::VpnBinary, dataset::TaskId::VpnService,
    dataset::TaskId::VpnApp,    dataset::TaskId::UstcBinary,
    dataset::TaskId::UstcApp,   dataset::TaskId::Tls120,
};

inline const std::vector<dataset::TaskId> kHardTasks = {
    dataset::TaskId::VpnApp,
    dataset::TaskId::Tls120,
};

/// Prints the ingestion-health line for every source dataset the given tasks
/// draw from; scenario tables append this so capture damage (malformed
/// frames) is visible next to the accuracy numbers it may have biased.
inline void print_ingest(core::BenchmarkEnv& env,
                         const std::vector<dataset::TaskId>& tasks) {
  std::vector<dataset::SourceDataset> seen;
  std::vector<const dataset::CleaningReport*> reports;
  for (auto task : tasks) {
    auto src = dataset::source_of(task);
    if (std::find(seen.begin(), seen.end(), src) != seen.end()) continue;
    seen.push_back(src);
    reports.push_back(&env.cleaning_report(src));
  }
  std::printf("\nIngestion health:\n");
  core::print_ingest_summaries(reports);
}

}  // namespace sugar::bench
