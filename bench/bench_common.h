// Shared helpers for the per-table bench binaries.
#pragma once

#include <cstdio>
#include <string>

#include "core/env.h"
#include "core/pipeline.h"
#include "core/report.h"

namespace sugar::bench {

inline std::string ac_f1(const ml::Metrics& m) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f / %.1f", 100 * m.accuracy, 100 * m.macro_f1);
  return buf;
}

inline const std::vector<dataset::TaskId> kAllTasks = {
    dataset::TaskId::VpnBinary, dataset::TaskId::VpnService,
    dataset::TaskId::VpnApp,    dataset::TaskId::UstcBinary,
    dataset::TaskId::UstcApp,   dataset::TaskId::Tls120,
};

inline const std::vector<dataset::TaskId> kHardTasks = {
    dataset::TaskId::VpnApp,
    dataset::TaskId::Tls120,
};

}  // namespace sugar::bench
