// Figure 1: the headline chart — TLS-120 packet-classification accuracy of
// a surveyed model (ET-BERT analog), Pcap-Encoder, and the Random Forest
// baseline across evaluation regimes. Expected shape: the surveyed model
// only shines in the flawed per-packet/unfrozen regime; Pcap-Encoder
// survives the honest regime; the shallow baseline beats everyone there.
#include "bench_common.h"

using namespace sugar;

int main(int argc, char** argv) {
  auto sup = bench::make_supervisor("fig1", argc, argv);
  core::BenchmarkEnv env;
  const auto task = dataset::TaskId::Tls120;

  core::MarkdownTable table{
      {"Model", "per-packet unfrozen", "per-flow unfrozen", "per-flow frozen"}};

  const struct {
    const char* name;
    dataset::SplitPolicy split;
    bool frozen;
  } regimes[] = {{"per-packet unfrozen", dataset::SplitPolicy::PerPacket, false},
                 {"per-flow unfrozen", dataset::SplitPolicy::PerFlow, false},
                 {"per-flow frozen", dataset::SplitPolicy::PerFlow, true}};

  auto deep_row = [&](replearn::ModelKind kind) {
    std::vector<std::string> row{replearn::to_string(kind)};
    for (auto regime : regimes) {
      core::ScenarioOptions opts;
      opts.split = regime.split;
      opts.frozen = regime.frozen;
      auto outcome = bench::run_packet_cell(sup, env, "fig1",
                                            replearn::to_string(kind), regime.name,
                                            task, kind, opts);
      row.push_back(bench::cell_pct_ac(outcome));
    }
    return row;
  };

  table.add_row(deep_row(replearn::ModelKind::EtBert));
  table.add_row(deep_row(replearn::ModelKind::TrafficFormer));
  table.add_row(deep_row(replearn::ModelKind::PcapEncoder));

  {
    std::vector<std::string> row{"Shallow RF"};
    for (auto regime : regimes) {
      core::ScenarioOptions opts;
      opts.split = regime.split;
      auto outcome =
          bench::run_shallow_cell(sup, env, "fig1", "Shallow RF", regime.name, task,
                                  core::ShallowKind::RandomForest, true, opts);
      row.push_back(bench::cell_pct_ac(outcome));
    }
    table.add_row(std::move(row));
  }

  core::print_table(
      "Figure 1 — Headline: TLS-120 packet accuracy across evaluation regimes",
      table);
  return sup.finalize() ? 0 : 1;
}
