// Figure 1: the headline chart — TLS-120 packet-classification accuracy of
// a surveyed model (ET-BERT analog), Pcap-Encoder, and the Random Forest
// baseline across evaluation regimes. Expected shape: the surveyed model
// only shines in the flawed per-packet/unfrozen regime; Pcap-Encoder
// survives the honest regime; the shallow baseline beats everyone there.
#include "bench_common.h"

using namespace sugar;

int main() {
  core::BenchmarkEnv env;
  const auto task = dataset::TaskId::Tls120;

  core::MarkdownTable table{
      {"Model", "per-packet unfrozen", "per-flow unfrozen", "per-flow frozen"}};

  auto deep_row = [&](replearn::ModelKind kind) {
    std::vector<std::string> row{replearn::to_string(kind)};
    const struct {
      dataset::SplitPolicy split;
      bool frozen;
    } regimes[] = {{dataset::SplitPolicy::PerPacket, false},
                   {dataset::SplitPolicy::PerFlow, false},
                   {dataset::SplitPolicy::PerFlow, true}};
    for (auto regime : regimes) {
      core::ScenarioOptions opts;
      opts.split = regime.split;
      opts.frozen = regime.frozen;
      auto r = core::run_packet_scenario(env, task, kind, opts);
      row.push_back(core::MarkdownTable::pct(r.metrics.accuracy));
      std::fprintf(stderr, "[fig1] %s %s %s: %s\n",
                   replearn::to_string(kind).c_str(),
                   dataset::to_string(regime.split).c_str(),
                   regime.frozen ? "frozen" : "unfrozen",
                   r.metrics.to_string().c_str());
    }
    return row;
  };

  table.add_row(deep_row(replearn::ModelKind::EtBert));
  table.add_row(deep_row(replearn::ModelKind::TrafficFormer));
  table.add_row(deep_row(replearn::ModelKind::PcapEncoder));

  {
    std::vector<std::string> row{"Shallow RF"};
    for (auto split : {dataset::SplitPolicy::PerPacket, dataset::SplitPolicy::PerFlow,
                       dataset::SplitPolicy::PerFlow}) {
      core::ScenarioOptions opts;
      opts.split = split;
      auto r = core::run_shallow_scenario(env, task, core::ShallowKind::RandomForest,
                                          true, opts);
      row.push_back(core::MarkdownTable::pct(r.metrics.accuracy));
      std::fprintf(stderr, "[fig1] RF %s: %s\n", dataset::to_string(split).c_str(),
                   r.metrics.to_string().c_str());
    }
    table.add_row(std::move(row));
  }

  core::print_table(
      "Figure 1 — Headline: TLS-120 packet accuracy across evaluation regimes",
      table);
  return 0;
}
