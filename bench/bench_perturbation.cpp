// Scenario-diversity benchmark #2: test-time adversarial header
// perturbation (VPN-app, per-flow split). Training data is untouched; the
// held-out partition gets seeded, deterministic jitter on exactly the
// header fields the paper identifies as shortcut carriers — TTL, TCP
// window, TCP MSS — via the net::mutate jitter passes. Each model is
// measured at its clean baseline and under each single-field jitter plus
// the combined one, and every perturbed cell records its accuracy delta
// against the clean run (extra.perturb). Expected shape: the shallow RF,
// which leans on raw header values, loses the most; the encoder models
// degrade less but are not immune.
//
// Extra flags on top of the common bench CLI:
//   --ttl-jitter <n>      max TTL delta for the ttl/all columns (default 8)
//   --window-jitter <n>   max TCP window delta (default 4096)
//   --mss-jitter <n>      max TCP MSS delta (default 120)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace sugar;

namespace {

struct PerturbCliOptions {
  int ttl_jitter = 8;
  int window_jitter = 4096;
  int mss_jitter = 120;
};

bool parse_perturb_flags(const std::vector<std::string>& args,
                         PerturbCliOptions& out, std::string& error) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&](int& dst, long hi) {
      if (i + 1 >= args.size()) {
        error = "missing value for " + arg;
        return false;
      }
      char* end = nullptr;
      long v = std::strtol(args[++i].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || args[i].empty() || v < 1 || v > hi) {
        error = "malformed or out-of-range value for " + arg + " '" + args[i] + "'";
        return false;
      }
      dst = static_cast<int>(v);
      return true;
    };
    if (arg == "--ttl-jitter") {
      if (!value(out.ttl_jitter, 254)) return false;
    } else if (arg == "--window-jitter") {
      if (!value(out.window_jitter, 65534)) return false;
    } else if (arg == "--mss-jitter") {
      if (!value(out.mss_jitter, 60000)) return false;
    } else {
      error = "unknown flag " + arg;
      return false;
    }
  }
  return true;
}

struct ModelSpec {
  const char* name;
  bool shallow;
  bool include_ip;  // shallow only
};

const std::vector<ModelSpec> kModels = {
    {"RF", true, true},
    {"RF-noip", true, false},
    {"NetMamba-frozen", false, false},
};

std::string shallow_perturb_key(dataset::TaskId task, bool include_ip,
                                const core::ScenarioOptions& opts) {
  return core::generic_cell_key(
      {"shallow", core::to_string(core::ShallowKind::RandomForest),
       dataset::to_string(task), dataset::to_string(opts.split),
       include_ip ? "ip" : "noip", std::to_string(opts.seed),
       opts.perturb.tag()});
}

core::CellOutcome run_model_cell(core::RunSupervisor& sup, core::BenchmarkEnv& env,
                                 dataset::TaskId task, const ModelSpec& model,
                                 std::string col, const core::ScenarioOptions& opts,
                                 double baseline_accuracy, bool baseline_ok) {
  core::CellSpec spec{"perturb", model.name, std::move(col), {}};
  if (model.shallow)
    spec.key = shallow_perturb_key(task, model.include_ip, opts);
  else
    spec.key = core::scenario_cell_key(
        task, "perturb:" + replearn::to_string(replearn::ModelKind::NetMamba), opts);
  return sup.run_cell(spec, [&, opts](core::CellContext& ctx) {
    core::ScenarioOptions o = opts;
    ctx.apply(o);
    core::CellSummary s =
        model.shallow
            ? core::summarize(core::run_shallow_scenario(
                  env, task, core::ShallowKind::RandomForest, model.include_ip, o))
            : core::summarize(core::run_packet_scenario(
                  env, task, replearn::ModelKind::NetMamba, o));
    core::Json p = core::Json::object();
    p.set("ttl", core::Json(opts.perturb.ttl_jitter));
    p.set("window", core::Json(opts.perturb.window_jitter));
    p.set("mss", core::Json(opts.perturb.mss_jitter));
    p.set("baseline_ok", core::Json(baseline_ok));
    if (baseline_ok) {
      p.set("baseline_accuracy", core::Json(baseline_accuracy));
      p.set("accuracy_delta", core::Json(s.accuracy - baseline_accuracy));
    }
    s.extra.set("perturb", std::move(p));
    return s;
  });
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  std::vector<std::string> extra;
  auto cfg = core::parse_bench_cli("perturbation", argc, argv, error, &extra);
  PerturbCliOptions cli;
  if (cfg && !parse_perturb_flags(extra, cli, error)) cfg.reset();
  if (!cfg) {
    std::fprintf(stderr, "bench_perturbation: %s\n%s", error.c_str(),
                 core::bench_usage("perturbation").c_str());
    std::fprintf(stderr,
                 "  --ttl-jitter <n>      max TTL delta (default 8)\n"
                 "  --window-jitter <n>   max TCP window delta (default 4096)\n"
                 "  --mss-jitter <n>      max TCP MSS delta (default 120)\n");
    return 2;
  }
  core::RunSupervisor sup(std::move(*cfg));
  core::BenchmarkEnv env;
  const auto task = dataset::TaskId::VpnApp;

  // Column grid: the clean baseline plus each single-field jitter and the
  // combined one. The baseline runs first (sequentially) because every
  // perturbed cell records its delta against it.
  struct Column {
    const char* name;
    dataset::PerturbSpec spec;
  };
  const std::vector<Column> columns = {
      {"baseline", {}},
      {"ttl", {cli.ttl_jitter, 0, 0}},
      {"window", {0, cli.window_jitter, 0}},
      {"mss", {0, 0, cli.mss_jitter}},
      {"all", {cli.ttl_jitter, cli.window_jitter, cli.mss_jitter}},
  };

  std::vector<std::vector<core::CellOutcome>> grid(kModels.size());
  for (std::size_t m = 0; m < kModels.size(); ++m) {
    core::ScenarioOptions base;
    base.split = dataset::SplitPolicy::PerFlow;
    auto baseline = run_model_cell(sup, env, task, kModels[m], columns[0].name,
                                   base, 0.0, false);
    grid[m].push_back(baseline);
    for (std::size_t c = 1; c < columns.size(); ++c) {
      core::ScenarioOptions opts = base;
      opts.perturb = columns[c].spec;
      grid[m].push_back(run_model_cell(sup, env, task, kModels[m],
                                       columns[c].name, opts,
                                       baseline.summary.accuracy,
                                       baseline.ok()));
    }
  }

  std::vector<std::string> header = {"Model"};
  for (const auto& col : columns) header.push_back(col.name);
  core::MarkdownTable table{header};
  for (std::size_t m = 0; m < kModels.size(); ++m) {
    std::vector<std::string> row = {kModels[m].name};
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const auto& o = grid[m][c];
      if (c == 0 || !o.ok() || !grid[m][0].ok()) {
        row.push_back(bench::cell_pct_ac(o));
      } else {
        char buf[48];
        std::snprintf(buf, sizeof buf, "%.1f (%+.1f)", 100 * o.summary.accuracy,
                      100 * (o.summary.accuracy - grid[m][0].summary.accuracy));
        row.push_back(buf);
      }
    }
    table.add_row(row);
  }
  core::print_table(
      "Perturbation — accuracy (%) and delta vs clean baseline under "
      "test-time header jitter (VPN-app, per-flow split)",
      table);

  bench::print_ingest(env, {task});
  return sup.finalize() ? 0 : 1;
}
