// Table 7: Pcap-Encoder input ablation in the per-flow frozen setting.
// Expected shape: removing IP addresses hurts; removing the whole header
// collapses the model (it is a header encoder); removing the payload does
// nothing on TLS-120 (everything-encrypted) and little on VPN-app —
// by design the encrypted payload contributes nothing.
#include "bench_common.h"

using namespace sugar;

int main(int argc, char** argv) {
  auto sup = bench::make_supervisor("table7", argc, argv);
  core::BenchmarkEnv env;
  const auto model = replearn::ModelKind::PcapEncoder;

  core::MarkdownTable table{{"Variant", "VPN-app (16) F1", "TLS-120 F1"}};

  struct Variant {
    const char* name;
    dataset::AblationSpec spec;
  };
  const Variant variants[] = {
      {"w/o IP addr.", {.zero_ip = true}},
      {"w/o header", {.zero_header = true}},
      {"w/o payload", {.zero_payload = true}},
      {"base", {}},
  };

  for (const auto& v : variants) {
    std::vector<std::string> row{v.name};
    for (auto task : bench::kHardTasks) {
      core::ScenarioOptions opts;
      opts.split = dataset::SplitPolicy::PerFlow;
      opts.frozen = true;
      opts.train_ablation = v.spec;
      opts.test_ablation = v.spec;
      auto outcome = bench::run_packet_cell(sup, env, "table7", v.name,
                                            dataset::to_string(task), task, model,
                                            opts);
      row.push_back(bench::cell_pct_f1(outcome));
    }
    table.add_row(std::move(row));
  }

  core::print_table(
      "Table 7 — Pcap-Encoder ablation (per-flow split, frozen, macro F1)", table);
  return sup.finalize() ? 0 : 1;
}
