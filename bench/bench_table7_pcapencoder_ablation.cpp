// Table 7: Pcap-Encoder input ablation in the per-flow frozen setting.
// Expected shape: removing IP addresses hurts; removing the whole header
// collapses the model (it is a header encoder); removing the payload does
// nothing on TLS-120 (everything-encrypted) and little on VPN-app —
// by design the encrypted payload contributes nothing.
#include "bench_common.h"

using namespace sugar;

int main() {
  core::BenchmarkEnv env;
  const auto model = replearn::ModelKind::PcapEncoder;

  core::MarkdownTable table{{"Variant", "VPN-app (16) F1", "TLS-120 F1"}};

  struct Variant {
    const char* name;
    dataset::AblationSpec spec;
  };
  const Variant variants[] = {
      {"w/o IP addr.", {.zero_ip = true}},
      {"w/o header", {.zero_header = true}},
      {"w/o payload", {.zero_payload = true}},
      {"base", {}},
  };

  for (const auto& v : variants) {
    std::vector<std::string> row{v.name};
    for (auto task : bench::kHardTasks) {
      core::ScenarioOptions opts;
      opts.split = dataset::SplitPolicy::PerFlow;
      opts.frozen = true;
      opts.train_ablation = v.spec;
      opts.test_ablation = v.spec;
      auto r = core::run_packet_scenario(env, task, model, opts);
      row.push_back(core::MarkdownTable::pct(r.metrics.macro_f1));
      std::fprintf(stderr, "[table7] %s %s: %s\n", v.name,
                   dataset::to_string(task).c_str(), r.metrics.to_string().c_str());
    }
    table.add_row(std::move(row));
  }

  core::print_table(
      "Table 7 — Pcap-Encoder ablation (per-flow split, frozen, macro F1)", table);
  return 0;
}
