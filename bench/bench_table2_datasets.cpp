// Table 2: the downstream datasets and tasks — classes, train size (after
// per-flow split + balanced undersampling) and natural-distribution test
// size, per the paper's preparation pipeline.
#include "bench_common.h"
#include "dataset/split.h"

using namespace sugar;

int main() {
  core::BenchmarkEnv env;

  core::MarkdownTable table{
      {"Dataset", "Task", "#Class", "#Train (balanced)", "#Test", "#Flows"}};

  for (auto task : bench::kAllTasks) {
    const auto& ds = env.task_dataset(task);
    dataset::SplitOptions so;
    so.policy = dataset::SplitPolicy::PerFlow;
    auto split = dataset::split_dataset(ds, so);
    auto train = dataset::balance_train(ds, split.train, 2);

    const char* src = "";
    switch (dataset::source_of(task)) {
      case dataset::SourceDataset::IscxVpn: src = "ISCX-VPN"; break;
      case dataset::SourceDataset::UstcTfc: src = "USTC-TFC"; break;
      case dataset::SourceDataset::CstnTls: src = "CSTN-TLS1.3"; break;
    }
    table.add_row({src, dataset::to_string(task), std::to_string(ds.num_classes),
                   std::to_string(train.size()), std::to_string(split.test.size()),
                   std::to_string(ds.flows().size())});
  }

  core::print_table("Table 2 — Downstream datasets and tasks", table);
  return 0;
}
