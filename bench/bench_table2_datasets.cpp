// Table 2: the downstream datasets and tasks — classes, train size (after
// per-flow split + balanced undersampling) and natural-distribution test
// size, per the paper's preparation pipeline.
#include "bench_common.h"
#include "dataset/split.h"

using namespace sugar;

int main(int argc, char** argv) {
  auto sup = bench::make_supervisor("table2", argc, argv);
  core::BenchmarkEnv env;

  core::MarkdownTable table{
      {"Dataset", "Task", "#Class", "#Train (balanced)", "#Test", "#Flows"}};

  for (auto task : bench::kAllTasks) {
    const char* src = "";
    switch (dataset::source_of(task)) {
      case dataset::SourceDataset::IscxVpn: src = "ISCX-VPN"; break;
      case dataset::SourceDataset::UstcTfc: src = "USTC-TFC"; break;
      case dataset::SourceDataset::CstnTls: src = "CSTN-TLS1.3"; break;
    }

    core::CellSpec spec{"table2", dataset::to_string(task), "stats",
                        core::generic_cell_key({"table2", dataset::to_string(task)})};
    auto outcome = sup.run_cell(spec, [&](core::CellContext&) {
      const auto& ds = env.task_dataset(task);
      dataset::SplitOptions so;
      so.policy = dataset::SplitPolicy::PerFlow;
      auto split = dataset::split_dataset(ds, so);
      auto train = dataset::balance_train(ds, split.train, 2);

      core::CellSummary s;
      s.n_train = train.size();
      s.n_test = split.test.size();
      s.extra.set("classes", core::Json(ds.num_classes));
      s.extra.set("flows", core::Json(ds.flows().size()));
      return s;
    });

    if (outcome.ok()) {
      auto extra_num = [&](const char* key) {
        const core::Json* v = outcome.summary.extra.find(key);
        return std::to_string(static_cast<std::size_t>(v ? v->number_or(0) : 0));
      };
      table.add_row({src, dataset::to_string(task), extra_num("classes"),
                     std::to_string(outcome.summary.n_train),
                     std::to_string(outcome.summary.n_test), extra_num("flows")});
    } else {
      auto failed = core::RunSupervisor::format_cell(outcome);
      table.add_row({src, dataset::to_string(task), failed, failed, failed, failed});
    }
  }

  core::print_table("Table 2 — Downstream datasets and tasks", table);
  return sup.finalize() ? 0 : 1;
}
