// Validates a BENCH_<table>.json artifact: parses it with the same strict
// Json parser the supervisor writes with and checks the schema essentials.
// The bench_smoke ctest label chains this after each bench run, so a crash,
// a torn write, or malformed output fails `ctest -L bench_smoke`.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/artifact.h"

using sugar::core::Json;

namespace {

bool fail(const char* path, const char* why) {
  std::fprintf(stderr, "json_check: %s: %s\n", path, why);
  return false;
}

bool check(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail(path, "cannot open");
  std::ostringstream buf;
  buf << in.rdbuf();

  auto doc = Json::parse(buf.str());
  if (!doc) return fail(path, "not valid JSON");
  if (!doc->is_object()) return fail(path, "top level is not an object");

  const Json* schema = doc->find("schema_version");
  if (!schema || schema->number_or(0) < 1)
    return fail(path, "missing schema_version");
  const bool v2 = schema->number_or(0) >= 2;
  const Json* bench = doc->find("bench");
  if (!bench || bench->string_or("").empty()) return fail(path, "missing bench");

  // Kernel-comparison artifacts (--substrate-compare schema 1,
  // --simd-compare schema 3) carry per-kernel cases instead of the
  // supervisor's health/cells layout.
  if (bench->string_or("").rfind("micro_substrate", 0) == 0) {
    const bool v3 = schema->number_or(0) >= 3;
    const Json* cases = doc->find("cases");
    if (!cases || !cases->is_array()) return fail(path, "missing cases array");
    if (cases->items().empty()) return fail(path, "cases array is empty");
    const Json* all = doc->find("all_identical");
    if (!all) return fail(path, "missing all_identical");
    if (v3) {
      const Json* backend = doc->find("simd_backend");
      if (!backend || backend->string_or("").empty())
        return fail(path, "schema 3 missing simd_backend");
    }
    for (const Json& c : cases->items()) {
      if (!c.find("kernel")) return fail(path, "case missing kernel");
      const Json* ident = c.find("identical");
      if (!ident) return fail(path, "case missing identical");
      const Json* speedup = c.find("speedup");
      if (!speedup || speedup->type() != Json::Type::kNumber)
        return fail(path, "case missing numeric speedup");
      if (v3) {
        // Schema 3: the throughput numbers land in the BENCH trajectory.
        const Json* gflops = c.find("gflops");
        if (!gflops || gflops->type() != Json::Type::kNumber ||
            gflops->number_or(-1) < 0)
          return fail(path, "schema 3 case missing non-negative gflops");
        const Json* bps = c.find("bytes_per_s");
        if (!bps || bps->type() != Json::Type::kNumber ||
            bps->number_or(-1) < 0)
          return fail(path, "schema 3 case missing non-negative bytes_per_s");
      }
    }
    return true;
  }

  const Json* health = doc->find("health");
  if (!health || !health->is_object()) return fail(path, "missing health object");
  const Json* cells = doc->find("cells");
  if (!cells || !cells->is_array()) return fail(path, "missing cells array");

  if (v2) {
    // Schema 2: the run's parallel-substrate configuration must be
    // attributable — compute-pool width and cell-level concurrency.
    const Json* config = doc->find("config");
    if (!config || !config->is_object()) return fail(path, "missing config object");
    const Json* threads = config->find("threads");
    if (!threads || threads->number_or(0) < 1)
      return fail(path, "config.threads missing or < 1");
    const Json* par = config->find("parallel_cells");
    if (!par || par->number_or(0) < 1)
      return fail(path, "config.parallel_cells missing or < 1");
  }

  std::size_t declared =
      static_cast<std::size_t>(health->find("cells")
                                   ? health->find("cells")->number_or(0)
                                   : 0);
  if (declared != cells->items().size())
    return fail(path, "health.cells disagrees with cells[] length");

  for (const Json& cell : cells->items()) {
    const Json* status = cell.find("status");
    if (!status) return fail(path, "cell missing status");
    const std::string& s = status->string_or("");
    if (s == "ok") {
      if (!cell.find("summary")) return fail(path, "ok cell missing summary");
    } else if (s == "failed") {
      if (!cell.find("error")) return fail(path, "failed cell missing error");
    } else {
      return fail(path, "cell status is neither ok nor failed");
    }
    if (v2) {
      const Json* wall = cell.find("wall_seconds");
      if (!wall || wall->type() != Json::Type::kNumber || wall->number_or(-1) < 0)
        return fail(path, "cell missing non-negative wall_seconds");
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: json_check <BENCH_artifact.json>\n");
    return 2;
  }
  if (!check(argv[1])) return 1;
  std::printf("json_check: %s ok\n", argv[1]);
  return 0;
}
