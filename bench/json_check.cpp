// Validates a BENCH_<table>.json artifact: parses it with the same strict
// Json parser the supervisor writes with and checks the schema essentials.
// The bench_smoke ctest label chains this after each bench run, so a crash,
// a torn write, or malformed output fails `ctest -L bench_smoke`.
//
// Beyond the default artifact check it knows three more modes:
//
//   json_check --chrome <trace.json>      validate a chrome://tracing dump
//   json_check --normalize <artifact>     print the artifact with volatile
//                                         (timing/trace/config-width) keys
//                                         stripped, for golden comparison
//   json_check --golden <artifact> <ref>  normalize both and require they
//                                         match byte-for-byte
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/artifact.h"

using sugar::core::Json;

namespace {

bool fail(const char* path, const char* why) {
  std::fprintf(stderr, "json_check: %s: %s\n", path, why);
  return false;
}

bool load(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail(path, "cannot open");
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

// Keys stripped by --normalize: anything that legitimately varies between
// two correct runs of the same bench (wall timings, derived throughput,
// machine width, and the whole observability section). schema_version is
// volatile too because SUGAR_TRACE flips it between 2 and 4.
constexpr const char* kVolatileKeys[] = {
    "schema_version", "trace",          "wall_seconds",
    "train_seconds",  "test_seconds",   "seq_seconds",
    "par_seconds",    "speedup",        "scalar_seconds",
    "simd_seconds",   "gflops",         "bytes_per_s",
    "threads",        "parallel_cells", "hardware_concurrency",
    "cpu_seconds",
};

bool is_volatile_key(const std::string& key) {
  for (const char* k : kVolatileKeys)
    if (key == k) return true;
  return false;
}

Json normalize(const Json& j) {
  if (j.is_object()) {
    Json out = Json::object();
    for (const auto& [key, value] : j.members())
      if (!is_volatile_key(key)) out.set(key, normalize(value));
    return out;
  }
  if (j.is_array()) {
    Json out = Json::array();
    for (const Json& item : j.items()) out.push(normalize(item));
    return out;
  }
  return j;
}

/// Validates the schema-4 `trace` section written by trace_section_json():
/// mode, per-phase aggregates, counters and the dropped-events tally. Every
/// numeric field must be a real JSON number — core::Json serializes NaN and
/// Inf as null, so a trace contaminated by a non-finite timing value fails
/// here instead of slipping into the artifact record.
bool check_trace_section(const char* path, const Json& trace) {
  if (!trace.is_object()) return fail(path, "trace is not an object");
  const Json* mode = trace.find("mode");
  const std::string& m = mode ? mode->string_or("") : "";
  if (m != "summary" && m != "spans")
    return fail(path, "trace.mode is neither summary nor spans");
  const Json* phases = trace.find("phases");
  if (!phases || !phases->is_array()) return fail(path, "trace missing phases array");
  for (const Json& p : phases->items()) {
    const Json* name = p.find("name");
    if (!name || name->string_or("").empty())
      return fail(path, "trace phase missing name");
    for (const char* field : {"count", "wall_ms", "cpu_ms"}) {
      const Json* v = p.find(field);
      if (!v || v->type() != Json::Type::kNumber || v->number_or(-1) < 0)
        return fail(path, "trace phase missing non-negative numeric field");
    }
  }
  const Json* counters = trace.find("counters");
  if (!counters || !counters->is_array())
    return fail(path, "trace missing counters array");
  for (const Json& c : counters->items()) {
    const Json* name = c.find("name");
    if (!name || name->string_or("").empty())
      return fail(path, "trace counter missing name");
    const Json* v = c.find("value");
    if (!v || v->type() != Json::Type::kNumber || v->number_or(-1) < 0)
      return fail(path, "trace counter missing non-negative numeric value");
  }
  const Json* dropped = trace.find("dropped_events");
  if (!dropped || dropped->type() != Json::Type::kNumber ||
      dropped->number_or(-1) < 0)
    return fail(path, "trace missing numeric dropped_events");
  return true;
}

/// Requires every member of `obj` to be a non-negative JSON number.
bool all_nonneg_numbers(const char* path, const Json& obj, const char* what) {
  if (!obj.is_object()) return fail(path, "serve section field is not an object");
  for (const auto& [key, value] : obj.members()) {
    if (value.type() != Json::Type::kNumber || value.number_or(-1) < 0) {
      std::fprintf(stderr, "json_check: %s: serve %s has a non-numeric or "
                           "negative field '%s'\n", path, what, key.c_str());
      return false;
    }
  }
  return true;
}

/// A counter timeline: an array of counter objects where every field is a
/// non-negative number and monotone non-decreasing across entries — the
/// engine's counters are contractually monotone, so a decrease means torn
/// stats or a reset bug. The crash-recovery cells reuse this across the
/// crash boundary: counters at the kill point must be <= the final ones,
/// proving restore never rewinds accounting.
bool check_counter_timeline(const char* path, const Json& snaps,
                            const char* what) {
  if (!snaps.is_array()) {
    std::fprintf(stderr, "json_check: %s: %s is not an array\n", path, what);
    return false;
  }
  const Json* prev = nullptr;
  for (const Json& snap : snaps.items()) {
    if (!all_nonneg_numbers(path, snap, what)) return false;
    if (prev) {
      for (const auto& [key, value] : prev->members()) {
        const Json* later = snap.find(key);
        if (!later || later->number_or(-1) < value.number_or(0)) {
          std::fprintf(stderr,
                       "json_check: %s: %s counter '%s' is not monotone\n",
                       path, what, key.c_str());
          return false;
        }
      }
    }
    prev = &snap;
  }
  return true;
}

/// The serve cell extra written by bench_serve: counters/gauges/latency
/// (all non-negative numbers) plus the `snapshots` counter timeline.
bool check_serve_section(const char* path, const Json& serve) {
  if (!serve.is_object()) return fail(path, "serve extra is not an object");
  for (const char* section : {"counters", "gauges", "latency"}) {
    const Json* s = serve.find(section);
    if (!s) return fail(path, "serve extra missing counters/gauges/latency");
    if (!all_nonneg_numbers(path, *s, section)) return false;
  }
  for (const char* field : {"count", "p50_us", "p90_us", "p99_us", "p999_us"}) {
    const Json* v = serve.find("latency")->find(field);
    if (!v || v->type() != Json::Type::kNumber)
      return fail(path, "serve latency missing a percentile field");
  }
  const Json* snaps = serve.find("snapshots");
  if (!snaps) return fail(path, "serve extra missing snapshots array");
  return check_counter_timeline(path, *snaps, "serve snapshot");
}

/// RecoveryStats: numeric accounting fields plus the last_error string.
bool check_recovery_section(const char* path, const Json& recovery) {
  if (!recovery.is_object())
    return fail(path, "recovery section is not an object");
  for (const char* field : {"snapshots_saved", "save_failures",
                            "snapshots_restored", "restore_failures",
                            "cold_starts"}) {
    const Json* v = recovery.find(field);
    if (!v || v->type() != Json::Type::kNumber || v->number_or(-1) < 0)
      return fail(path, "recovery section missing a non-negative counter");
  }
  const Json* last = recovery.find("last_error");
  if (!last || last->type() != Json::Type::kString)
    return fail(path, "recovery section missing last_error string");
  return true;
}

/// The crash_recovery cell extra: the kill-restore-replay run must report
/// bit-identical verdicts and counters (`identical` is the bench's own
/// comparison — a false here is a determinism bug, so the artifact check
/// fails hard), and the two-entry counter timeline spanning the crash
/// boundary must be monotone.
bool check_crash_section(const char* path, const Json& crash) {
  if (!crash.is_object())
    return fail(path, "crash_recovery extra is not an object");
  const Json* kill = crash.find("kill_tick");
  if (!kill || kill->type() != Json::Type::kNumber || kill->number_or(-1) < 0)
    return fail(path, "crash_recovery missing non-negative kill_tick");
  for (const char* field : {"save_ok", "restore_ok", "counters_identical",
                            "verdicts_identical", "identical"}) {
    const Json* v = crash.find(field);
    if (!v || v->type() != Json::Type::kBool)
      return fail(path, "crash_recovery missing a boolean assertion field");
    if (!v->bool_or(false)) {
      std::fprintf(stderr,
                   "json_check: %s: crash_recovery '%s' is false — restored "
                   "run diverged from the uninterrupted one\n", path, field);
      return false;
    }
  }
  const Json* recovery = crash.find("recovery");
  if (!recovery || !check_recovery_section(path, *recovery)) return false;
  const Json* snaps = crash.find("snapshots");
  if (!snaps) return fail(path, "crash_recovery missing snapshots timeline");
  if (!check_counter_timeline(path, *snaps, "crash_recovery")) return false;
  if (snaps->items().size() < 2)
    return fail(path, "crash_recovery timeline must span the crash boundary");
  return true;
}

/// Circuit-breaker section: state, monotone counters and a transition log
/// that must be a legal walk of the breaker state machine —
/// closed→open, open→half_open, half_open→open, half_open→closed — starting
/// from closed, with each edge departing the state the previous one entered
/// and call ordinals non-decreasing.
bool check_breaker_section(const char* path, const Json& breaker) {
  if (!breaker.is_object())
    return fail(path, "breaker section is not an object");
  auto legal_state = [](const std::string& s) {
    return s == "closed" || s == "open" || s == "half_open";
  };
  const Json* state = breaker.find("state");
  if (!state || !legal_state(state->string_or("")))
    return fail(path, "breaker state is not closed/open/half_open");
  const Json* counters = breaker.find("counters");
  if (!counters || !all_nonneg_numbers(path, *counters, "breaker counters"))
    return false;
  const Json* transitions = breaker.find("transitions");
  if (!transitions || !transitions->is_array())
    return fail(path, "breaker missing transitions array");
  std::string at = "closed";
  double last_call = 0;
  for (const Json& t : transitions->items()) {
    const std::string& from = t.find("from") ? t.find("from")->string_or("") : "";
    const std::string& to = t.find("to") ? t.find("to")->string_or("") : "";
    const Json* call = t.find("at_call");
    if (!legal_state(from) || !legal_state(to) || !call ||
        call->type() != Json::Type::kNumber)
      return fail(path, "breaker transition is malformed");
    const bool legal_edge = (from == "closed" && to == "open") ||
                            (from == "open" && to == "half_open") ||
                            (from == "half_open" && to == "open") ||
                            (from == "half_open" && to == "closed");
    if (!legal_edge) {
      std::fprintf(stderr,
                   "json_check: %s: illegal breaker transition %s -> %s\n",
                   path, from.c_str(), to.c_str());
      return false;
    }
    if (from != at) {
      std::fprintf(stderr,
                   "json_check: %s: breaker transition departs '%s' but the "
                   "machine was in '%s'\n", path, from.c_str(), at.c_str());
      return false;
    }
    if (call->number_or(-1) < last_call)
      return fail(path, "breaker transition call ordinals decrease");
    at = to;
    last_call = call->number_or(0);
  }
  return true;
}

/// The chaos_cell extra: per-mode deterministic fault injection. Every mode
/// carries the injector's draw/fire accounting (fired <= draws, probability
/// in [0,1]) and the engine stats; the breaker mode must include a legal
/// breaker section, and the io mode must prove a post-storm snapshot still
/// restores.
bool check_chaos_cell_section(const char* path, const Json& cell) {
  if (!cell.is_object()) return fail(path, "chaos_cell extra is not an object");
  const Json* mode = cell.find("mode");
  const std::string& m = mode ? mode->string_or("") : "";
  if (m != "breaker" && m != "alloc" && m != "io")
    return fail(path, "chaos_cell mode is not breaker/alloc/io");
  const Json* chaos = cell.find("chaos");
  if (!chaos || !chaos->is_object())
    return fail(path, "chaos_cell missing chaos object");
  const Json* sites = chaos->find("sites");
  if (!sites || !sites->is_array())
    return fail(path, "chaos_cell missing chaos.sites array");
  for (const Json& site : sites->items()) {
    const Json* name = site.find("site");
    if (!name || name->string_or("").empty())
      return fail(path, "chaos site missing name");
    const Json* p = site.find("probability");
    if (!p || p->type() != Json::Type::kNumber || p->number_or(-1) < 0 ||
        p->number_or(2) > 1)
      return fail(path, "chaos site probability outside [0, 1]");
    const Json* draws = site.find("draws");
    const Json* fired = site.find("fired");
    if (!draws || !fired || draws->type() != Json::Type::kNumber ||
        fired->type() != Json::Type::kNumber ||
        fired->number_or(-1) > draws->number_or(0))
      return fail(path, "chaos site fired exceeds draws");
  }
  const Json* stats = cell.find("stats");
  if (!stats || !stats->is_object())
    return fail(path, "chaos_cell missing stats object");
  for (const char* section : {"counters", "gauges"}) {
    const Json* s = stats->find(section);
    if (!s || !all_nonneg_numbers(path, *s, section)) return false;
  }
  if (m == "breaker") {
    const Json* breaker = cell.find("breaker");
    if (!breaker) return fail(path, "breaker chaos cell missing breaker section");
    if (!check_breaker_section(path, *breaker)) return false;
  }
  if (m == "io") {
    const Json* recovery = cell.find("recovery");
    if (!recovery || !check_recovery_section(path, *recovery)) return false;
    const Json* restored = cell.find("final_restore_ok");
    if (!restored || !restored->bool_or(false))
      return fail(path, "io chaos cell: post-storm snapshot did not restore");
  }
  return true;
}

/// The out-of-core cell extra written by `bench_table8_shallow --scale`
/// (the core::run_ooc_scale payload): streamed-pipeline evidence. Hard
/// requirements: a positive scale and throughput, a cache hit rate inside
/// [0, 1], a non-empty digest and a positive peak RSS — a zero or missing
/// field means a stage was skipped or the accounting is torn.
bool check_ooc_section(const char* path, const Json& ooc) {
  if (!ooc.is_object()) return fail(path, "ooc extra is not an object");
  for (const char* field : {"scale", "rows_generated", "rows_kept",
                            "train_rows", "test_rows", "rows_per_sec",
                            "fit_rows_per_sec", "store_bytes",
                            "peak_rss_bytes"}) {
    const Json* v = ooc.find(field);
    if (!v || v->type() != Json::Type::kNumber || v->number_or(0) <= 0) {
      std::fprintf(stderr,
                   "json_check: %s: ooc extra field '%s' missing or not a "
                   "positive number\n", path, field);
      return false;
    }
  }
  const Json* hit = ooc.find("page_cache_hit_rate");
  if (!hit || hit->type() != Json::Type::kNumber || hit->number_or(-1) < 0 ||
      hit->number_or(2) > 1)
    return fail(path, "ooc page_cache_hit_rate outside [0, 1]");
  for (const char* field : {"accuracy", "macro_f1"}) {
    const Json* v = ooc.find(field);
    if (!v || v->type() != Json::Type::kNumber || v->number_or(-1) < 0 ||
        v->number_or(2) > 1)
      return fail(path, "ooc accuracy/macro_f1 outside [0, 1]");
  }
  const Json* digest = ooc.find("digest");
  if (!digest || digest->string_or("").empty())
    return fail(path, "ooc extra missing digest");
  return true;
}

/// The drift/transfer cell extra (`extra.drift`): provenance of the
/// train/test distribution pair. All four fields are required non-negative
/// integers — a missing one means the cell can't be attributed to a
/// distribution shift.
bool check_drift_section(const char* path, const Json& drift) {
  if (!drift.is_object()) return fail(path, "drift extra is not an object");
  for (const char* field : {"train_epoch", "test_epoch", "train_family",
                            "test_family"}) {
    const Json* v = drift.find(field);
    if (!v || v->type() != Json::Type::kNumber || v->number_or(-1) < 0)
      return fail(path, "drift extra missing a non-negative numeric field");
  }
  return true;
}

/// The assembled drift curve (`extra.drift_curve`): per-model arrays of
/// {epoch, accuracy} points with strictly ascending epochs and accuracies
/// inside [0, 1]. An empty series is legal (every cell of that model
/// failed) but a malformed point is not.
bool check_drift_curve_section(const char* path, const Json& curve) {
  if (!curve.is_object()) return fail(path, "drift_curve is not an object");
  if (curve.members().empty()) return fail(path, "drift_curve has no models");
  for (const auto& [model, series] : curve.members()) {
    if (!series.is_array()) {
      std::fprintf(stderr, "json_check: %s: drift_curve series '%s' is not an "
                           "array\n", path, model.c_str());
      return false;
    }
    double last_epoch = -1;
    for (const Json& point : series.items()) {
      const Json* epoch = point.find("epoch");
      const Json* acc = point.find("accuracy");
      if (!epoch || epoch->type() != Json::Type::kNumber ||
          epoch->number_or(-1) < 0 || epoch->number_or(-1) <= last_epoch)
        return fail(path, "drift_curve epochs are not strictly ascending");
      if (!acc || acc->type() != Json::Type::kNumber ||
          acc->number_or(-1) < 0 || acc->number_or(2) > 1)
        return fail(path, "drift_curve accuracy outside [0, 1]");
      last_epoch = epoch->number_or(0);
    }
  }
  return true;
}

/// The perturbation cell extra (`extra.perturb`): the jitter magnitudes,
/// whether the clean baseline completed, and — when it did — the baseline
/// accuracy plus the signed accuracy delta against it.
bool check_perturb_section(const char* path, const Json& perturb) {
  if (!perturb.is_object()) return fail(path, "perturb extra is not an object");
  for (const char* field : {"ttl", "window", "mss"}) {
    const Json* v = perturb.find(field);
    if (!v || v->type() != Json::Type::kNumber || v->number_or(-1) < 0)
      return fail(path, "perturb extra missing a non-negative jitter field");
  }
  const Json* ok = perturb.find("baseline_ok");
  if (!ok || ok->type() != Json::Type::kBool)
    return fail(path, "perturb extra missing baseline_ok bool");
  if (ok->bool_or(false)) {
    const Json* base = perturb.find("baseline_accuracy");
    if (!base || base->type() != Json::Type::kNumber ||
        base->number_or(-1) < 0 || base->number_or(2) > 1)
      return fail(path, "perturb baseline_accuracy outside [0, 1]");
    const Json* delta = perturb.find("accuracy_delta");
    if (!delta || delta->type() != Json::Type::kNumber ||
        delta->number_or(-2) < -1 || delta->number_or(2) > 1)
      return fail(path, "perturb accuracy_delta outside [-1, 1]");
  }
  return true;
}

/// Per-cell `trace` object (counter deltas attributed to the cell).
bool check_cell_trace(const char* path, const Json& cell_trace) {
  if (!cell_trace.is_object()) return fail(path, "cell trace is not an object");
  const Json* counters = cell_trace.find("counters");
  if (!counters || !counters->is_array())
    return fail(path, "cell trace missing counters array");
  for (const Json& c : counters->items()) {
    const Json* name = c.find("name");
    if (!name || name->string_or("").empty())
      return fail(path, "cell trace counter missing name");
    const Json* delta = c.find("delta");
    if (!delta || delta->type() != Json::Type::kNumber ||
        delta->number_or(-1) < 0)
      return fail(path, "cell trace counter missing non-negative numeric delta");
  }
  return true;
}

bool check(const char* path) {
  std::string text;
  if (!load(path, text)) return false;

  auto doc = Json::parse(text);
  if (!doc) return fail(path, "not valid JSON");
  if (!doc->is_object()) return fail(path, "top level is not an object");

  const Json* schema = doc->find("schema_version");
  if (!schema || schema->number_or(0) < 1)
    return fail(path, "missing schema_version");
  const bool v2 = schema->number_or(0) >= 2;
  const bool v4 = schema->number_or(0) >= 4;
  const Json* bench = doc->find("bench");
  if (!bench || bench->string_or("").empty()) return fail(path, "missing bench");

  // Kernel-comparison artifacts (--substrate-compare schema 1,
  // --simd-compare schema 3, --trace-compare schema 1) carry per-kernel
  // cases instead of the supervisor's health/cells layout.
  if (bench->string_or("").rfind("micro_substrate", 0) == 0) {
    const bool v3 = schema->number_or(0) >= 3;
    const bool tree = bench->string_or("") == "micro_substrate_tree";
    const bool ooc = bench->string_or("") == "micro_substrate_ooc";
    const Json* cases = doc->find("cases");
    if (!cases || !cases->is_array()) return fail(path, "missing cases array");
    if (cases->items().empty()) return fail(path, "cases array is empty");
    const Json* all = doc->find("all_identical");
    if (!all) return fail(path, "missing all_identical");
    if (ooc) {
      // --ooc-compare: resident-vs-paged bit-identity and the streaming
      // RSS bound are hard artifact contracts, not advisories.
      if (!all->bool_or(false))
        return fail(path, "ooc compare all_identical is not true");
      const Json* rss_ok = doc->find("rss_ok");
      if (!rss_ok || !rss_ok->bool_or(false))
        return fail(path, "ooc compare rss_ok is not true");
      const Json* payload = doc->find("payload_bytes");
      if (!payload || payload->number_or(0) <= 0)
        return fail(path, "ooc compare missing positive payload_bytes");
      for (const Json& c : cases->items()) {
        const Json* threads = c.find("threads");
        if (!threads || threads->number_or(0) < 1)
          return fail(path, "ooc case missing threads >= 1");
        const Json* ident = c.find("identical");
        if (!ident || !ident->bool_or(false))
          return fail(path, "ooc case digests differ");
        const Json* under = c.find("rss_under_dataset");
        if (!under || !under->bool_or(false))
          return fail(path, "ooc case peak RSS reached the dataset size");
        const Json* hit = c.find("hit_rate");
        if (!hit || hit->type() != Json::Type::kNumber ||
            hit->number_or(-1) < 0 || hit->number_or(2) > 1)
          return fail(path, "ooc case hit_rate outside [0, 1]");
        const Json* rps = c.find("paged_rows_per_sec");
        if (!rps || rps->type() != Json::Type::kNumber ||
            rps->number_or(0) <= 0)
          return fail(path, "ooc case missing positive paged_rows_per_sec");
      }
      return true;
    }
    if (v3) {
      const Json* backend = doc->find("simd_backend");
      if (!backend || backend->string_or("").empty())
        return fail(path, "schema 3 missing simd_backend");
    }
    if (tree) {
      // Tree-compare artifacts must stamp the quantization config and the
      // compute backend so a speedup number is attributable.
      const Json* backend = doc->find("simd_backend");
      if (!backend || backend->string_or("").empty())
        return fail(path, "tree compare missing simd_backend");
      const Json* bins = doc->find("histogram_bins");
      if (!bins || bins->number_or(0) < 2)
        return fail(path, "tree compare missing histogram_bins >= 2");
    }
    for (const Json& c : cases->items()) {
      if (!c.find("kernel")) return fail(path, "case missing kernel");
      const Json* ident = c.find("identical");
      if (!ident) return fail(path, "case missing identical");
      const Json* speedup = c.find("speedup");
      if (!speedup || speedup->type() != Json::Type::kNumber)
        return fail(path, "case missing numeric speedup");
      if (tree) {
        // The binned engine must not regress: speedup >= 1 is part of the
        // artifact contract, and the accuracy delta must be recorded.
        if (speedup->number_or(0) < 1.0)
          return fail(path, "tree compare case speedup < 1");
        const Json* delta = c.find("accuracy_delta");
        if (!delta || delta->type() != Json::Type::kNumber)
          return fail(path, "tree compare case missing numeric accuracy_delta");
        const Json* cbins = c.find("histogram_bins");
        if (!cbins || cbins->number_or(0) < 2)
          return fail(path, "tree compare case missing histogram_bins");
      }
      if (v3) {
        // Schema 3: the throughput numbers land in the BENCH trajectory.
        const Json* gflops = c.find("gflops");
        if (!gflops || gflops->type() != Json::Type::kNumber ||
            gflops->number_or(-1) < 0)
          return fail(path, "schema 3 case missing non-negative gflops");
        const Json* bps = c.find("bytes_per_s");
        if (!bps || bps->type() != Json::Type::kNumber ||
            bps->number_or(-1) < 0)
          return fail(path, "schema 3 case missing non-negative bytes_per_s");
      }
    }
    return true;
  }

  const Json* health = doc->find("health");
  if (!health || !health->is_object()) return fail(path, "missing health object");
  const Json* cells = doc->find("cells");
  if (!cells || !cells->is_array()) return fail(path, "missing cells array");

  if (v2) {
    // Schema 2: the run's parallel-substrate configuration must be
    // attributable — compute-pool width and cell-level concurrency.
    const Json* config = doc->find("config");
    if (!config || !config->is_object()) return fail(path, "missing config object");
    const Json* threads = config->find("threads");
    if (!threads || threads->number_or(0) < 1)
      return fail(path, "config.threads missing or < 1");
    const Json* par = config->find("parallel_cells");
    if (!par || par->number_or(0) < 1)
      return fail(path, "config.parallel_cells missing or < 1");
  }

  if (v4) {
    // Schema 4 is only written when tracing was active, so the trace
    // section is mandatory, not optional.
    const Json* trace = doc->find("trace");
    if (!trace) return fail(path, "schema 4 missing trace section");
    if (!check_trace_section(path, *trace)) return false;
  } else if (doc->find("trace")) {
    return fail(path, "trace section present but schema_version < 4");
  }

  std::size_t declared =
      static_cast<std::size_t>(health->find("cells")
                                   ? health->find("cells")->number_or(0)
                                   : 0);
  if (declared != cells->items().size())
    return fail(path, "health.cells disagrees with cells[] length");

  for (const Json& cell : cells->items()) {
    const Json* status = cell.find("status");
    if (!status) return fail(path, "cell missing status");
    const std::string& s = status->string_or("");
    if (s == "ok") {
      if (!cell.find("summary")) return fail(path, "ok cell missing summary");
    } else if (s == "failed") {
      if (!cell.find("error")) return fail(path, "failed cell missing error");
    } else {
      return fail(path, "cell status is neither ok nor failed");
    }
    if (v2) {
      const Json* wall = cell.find("wall_seconds");
      if (!wall || wall->type() != Json::Type::kNumber || wall->number_or(-1) < 0)
        return fail(path, "cell missing non-negative wall_seconds");
    }
    if (const Json* cell_trace = cell.find("trace")) {
      if (!v4) return fail(path, "cell trace present but schema_version < 4");
      if (!check_cell_trace(path, *cell_trace)) return false;
    }
    if (const Json* summary = cell.find("summary")) {
      const Json* extra = summary->find("extra");
      if (const Json* serve = extra ? extra->find("serve") : nullptr)
        if (!check_serve_section(path, *serve)) return false;
      if (const Json* crash = extra ? extra->find("crash_recovery") : nullptr)
        if (!check_crash_section(path, *crash)) return false;
      if (const Json* chaos = extra ? extra->find("chaos_cell") : nullptr)
        if (!check_chaos_cell_section(path, *chaos)) return false;
      if (const Json* ooc = extra ? extra->find("ooc") : nullptr)
        if (!check_ooc_section(path, *ooc)) return false;
      if (const Json* drift = extra ? extra->find("drift") : nullptr)
        if (!check_drift_section(path, *drift)) return false;
      if (const Json* curve = extra ? extra->find("drift_curve") : nullptr)
        if (!check_drift_curve_section(path, *curve)) return false;
      if (const Json* perturb = extra ? extra->find("perturb") : nullptr)
        if (!check_perturb_section(path, *perturb)) return false;
    }
  }
  return true;
}

/// Chrome trace_event dumps (`--trace <path>`): the {traceEvents: [...]}
/// wrapper with at least one complete ("X") event, every event carrying
/// the fields chrome://tracing / Perfetto require to place it.
bool check_chrome(const char* path) {
  std::string text;
  if (!load(path, text)) return false;
  auto doc = Json::parse(text);
  if (!doc) return fail(path, "not valid JSON");
  if (!doc->is_object()) return fail(path, "top level is not an object");
  const Json* events = doc->find("traceEvents");
  if (!events || !events->is_array())
    return fail(path, "missing traceEvents array");
  std::size_t complete = 0;
  for (const Json& e : events->items()) {
    if (!e.is_object()) return fail(path, "trace event is not an object");
    const Json* name = e.find("name");
    if (!name || name->string_or("").empty())
      return fail(path, "trace event missing name");
    const Json* ph = e.find("ph");
    const std::string& phase = ph ? ph->string_or("") : "";
    if (phase.empty()) return fail(path, "trace event missing ph");
    for (const char* field : {"pid", "tid"}) {
      const Json* v = e.find(field);
      if (!v || v->type() != Json::Type::kNumber)
        return fail(path, "trace event missing numeric pid/tid");
    }
    if (phase == "X") {
      ++complete;
      for (const char* field : {"ts", "dur"}) {
        const Json* v = e.find(field);
        if (!v || v->type() != Json::Type::kNumber || v->number_or(-1) < 0)
          return fail(path, "complete event missing non-negative ts/dur");
      }
    }
  }
  if (complete == 0) return fail(path, "no complete (ph=X) events");
  return true;
}

bool normalize_file(const char* path, std::string& out) {
  std::string text;
  if (!load(path, text)) return false;
  auto doc = Json::parse(text);
  if (!doc) return fail(path, "not valid JSON");
  out = normalize(*doc).dump(2);
  out += '\n';
  return true;
}

bool check_golden(const char* artifact, const char* golden) {
  std::string got, want;
  if (!normalize_file(artifact, got)) return false;
  // The golden file is stored already normalized, but normalize it again so
  // regenerating it from a raw artifact also works.
  if (!normalize_file(golden, want)) return false;
  if (got == want) return true;
  // Point at the first differing line so a drifted golden is debuggable.
  std::istringstream a(got), b(want);
  std::string la, lb;
  std::size_t line = 0;
  while (true) {
    ++line;
    const bool ea = !std::getline(a, la);
    const bool eb = !std::getline(b, lb);
    if (ea && eb) break;
    if (ea != eb || la != lb) {
      std::fprintf(stderr,
                   "json_check: %s: normalized artifact diverges from golden "
                   "%s at line %zu\n  artifact: %s\n  golden:   %s\n",
                   artifact, golden, line, ea ? "<eof>" : la.c_str(),
                   eb ? "<eof>" : lb.c_str());
      return false;
    }
  }
  return false;  // unreachable: equal streams imply got == want
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--chrome") == 0) {
    if (!check_chrome(argv[2])) return 1;
    std::printf("json_check: %s ok (chrome trace)\n", argv[2]);
    return 0;
  }
  if (argc == 3 && std::strcmp(argv[1], "--normalize") == 0) {
    std::string out;
    if (!normalize_file(argv[2], out)) return 1;
    std::fwrite(out.data(), 1, out.size(), stdout);
    return 0;
  }
  if (argc == 4 && std::strcmp(argv[1], "--golden") == 0) {
    if (!check_golden(argv[2], argv[3])) return 1;
    std::printf("json_check: %s matches golden %s\n", argv[2], argv[3]);
    return 0;
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: json_check <BENCH_artifact.json>\n"
                 "       json_check --chrome <trace.json>\n"
                 "       json_check --normalize <artifact.json>\n"
                 "       json_check --golden <artifact.json> <golden.json>\n");
    return 2;
  }
  if (!check(argv[1])) return 1;
  std::printf("json_check: %s ok\n", argv[1]);
  return 0;
}
