// Figure 6: training and inference time of every model relative to the
// Random Forest (VPN-app, per-flow split). Expected shape: RF fastest by
// far; each deep model costs 2-500x at training; unfrozen costs 2-8x over
// frozen; netFound (largest) slowest at inference, NetMamba cheapest among
// the deep models; Pcap-Encoder near the top of the cost range.
#include "bench_common.h"

using namespace sugar;

int main() {
  core::BenchmarkEnv env;
  const auto task = dataset::TaskId::VpnApp;

  // Baseline: Random Forest.
  core::ScenarioOptions opts;
  opts.split = dataset::SplitPolicy::PerFlow;
  auto rf = core::run_shallow_scenario(env, task, core::ShallowKind::RandomForest,
                                       true, opts);
  std::fprintf(stderr, "[fig6] RF: train %.2fs test %.2fs\n", rf.train_seconds,
               rf.test_seconds);

  core::MarkdownTable table{{"Model", "Train x (frozen)", "Train x (unfrozen)",
                             "Inference x", "Params"}};
  table.add_row({"RF (baseline)", "1.0", "-", "1.0", "-"});

  for (auto kind : replearn::all_model_kinds()) {
    double train_frozen = 0, train_unfrozen = 0, infer = 0;
    std::size_t params = 0;
    for (bool frozen : {true, false}) {
      core::ScenarioOptions dopts;
      dopts.split = dataset::SplitPolicy::PerFlow;
      dopts.frozen = frozen;
      auto r = core::run_packet_scenario(env, task, kind, dopts);
      (frozen ? train_frozen : train_unfrozen) = r.train_seconds;
      infer = r.test_seconds;
      std::fprintf(stderr, "[fig6] %s %s: train %.2fs test %.2fs\n",
                   replearn::to_string(kind).c_str(), frozen ? "frozen" : "unfrozen",
                   r.train_seconds, r.test_seconds);
    }
    {
      auto bundle = env.pretrained(kind, replearn::TaskMode::Packet);
      params = bundle.encoder->param_count();
    }
    table.add_row({replearn::to_string(kind),
                   core::MarkdownTable::num(train_frozen / rf.train_seconds, 1),
                   core::MarkdownTable::num(train_unfrozen / rf.train_seconds, 1),
                   core::MarkdownTable::num(infer / rf.test_seconds, 1),
                   std::to_string(params)});
  }

  core::print_table(
      "Figure 6 — Training/inference time relative to the RF baseline (VPN-app, "
      "per-flow split)",
      table);
  return 0;
}
