// Figure 6: training and inference time of every model relative to the
// Random Forest (VPN-app, per-flow split). Expected shape: RF fastest by
// far; each deep model costs 2-500x at training; unfrozen costs 2-8x over
// frozen; netFound (largest) slowest at inference, NetMamba cheapest among
// the deep models; Pcap-Encoder near the top of the cost range.
#include "bench_common.h"

using namespace sugar;

int main(int argc, char** argv) {
  auto sup = bench::make_supervisor("fig6", argc, argv);
  core::BenchmarkEnv env;
  const auto task = dataset::TaskId::VpnApp;

  // Baseline: Random Forest.
  core::ScenarioOptions opts;
  opts.split = dataset::SplitPolicy::PerFlow;
  auto rf = bench::run_shallow_cell(sup, env, "fig6", "RF", "baseline", task,
                                    core::ShallowKind::RandomForest, true, opts);
  const double rf_train = rf.ok() && rf.summary.train_seconds > 0
                              ? rf.summary.train_seconds
                              : 1.0;
  const double rf_test =
      rf.ok() && rf.summary.test_seconds > 0 ? rf.summary.test_seconds : 1.0;

  core::MarkdownTable table{{"Model", "Train x (frozen)", "Train x (unfrozen)",
                             "Inference x", "Params"}};
  table.add_row({"RF (baseline)", rf.ok() ? "1.0" : bench::cell_ac_f1(rf), "-",
                 rf.ok() ? "1.0" : bench::cell_ac_f1(rf), "-"});

  for (auto kind : replearn::all_model_kinds()) {
    core::CellOutcome frozen_outcome, unfrozen_outcome;
    for (bool frozen : {true, false}) {
      core::ScenarioOptions dopts;
      dopts.split = dataset::SplitPolicy::PerFlow;
      dopts.frozen = frozen;
      core::CellSpec spec{
          "fig6", replearn::to_string(kind), frozen ? "frozen" : "unfrozen",
          core::scenario_cell_key(task, "timing:" + replearn::to_string(kind),
                                  dopts)};
      auto outcome = sup.run_cell(spec, [&](core::CellContext& ctx) {
        core::ScenarioOptions o = dopts;
        ctx.apply(o);
        auto s = core::summarize(core::run_packet_scenario(env, task, kind, o));
        // The bundle is pre-trained (and cached) by now; record its size.
        s.extra.set("params",
                    core::Json(env.pretrained(kind, replearn::TaskMode::Packet,
                                              ctx.cancel)
                                   .encoder->param_count()));
        return s;
      });
      (frozen ? frozen_outcome : unfrozen_outcome) = outcome;
    }

    auto ratio = [&](const core::CellOutcome& o, double seconds, double base) {
      return core::RunSupervisor::format_cell(
          o, core::MarkdownTable::num(seconds / base, 1));
    };
    std::string params = "-";
    for (const auto* o : {&frozen_outcome, &unfrozen_outcome})
      if (o->ok())
        if (const core::Json* p = o->summary.extra.find("params"))
          params = std::to_string(static_cast<std::size_t>(p->number_or(0)));
    table.add_row(
        {replearn::to_string(kind),
         ratio(frozen_outcome, frozen_outcome.summary.train_seconds, rf_train),
         ratio(unfrozen_outcome, unfrozen_outcome.summary.train_seconds, rf_train),
         ratio(unfrozen_outcome, unfrozen_outcome.summary.test_seconds, rf_test),
         params});
  }

  core::print_table(
      "Figure 6 — Training/inference time relative to the RF baseline (VPN-app, "
      "per-flow split)",
      table);
  return sup.finalize() ? 0 : 1;
}
