// Figure 6: training and inference time of every model relative to the
// Random Forest (VPN-app, per-flow split). Expected shape: RF fastest by
// far; each deep model costs 2-500x at training; unfrozen costs 2-8x over
// frozen; netFound (largest) slowest at inference, NetMamba cheapest among
// the deep models; Pcap-Encoder near the top of the cost range.
//
// This bench also carries the substrate's sequential-vs-parallel probe: a
// fixed forest fit timed at 1 thread and at the configured pool width, with
// bit-identical-prediction verification and the speedup recorded in the
// artifact. The per-model cells run as one batch through
// RunSupervisor::run_cells, so `--parallel-cells N` executes up to N model
// scenarios concurrently.
#include <random>

#include "bench_common.h"
#include "core/threadpool.h"
#include "ml/forest.h"

using namespace sugar;

namespace {

/// Substrate probe cell: same forest fit at 1 thread vs the configured
/// pool. Runs before (and outside) the parallel batch because it resizes
/// the global pool, which must only happen at a quiescent point.
core::CellSummary substrate_probe() {
  ml::Matrix x(360, 18);
  std::mt19937_64 rng(97);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto& v : x.data()) v = dist(rng);
  std::vector<int> y(x.rows());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 5);

  auto fit_once = [&] {
    ml::ForestConfig fc;
    fc.num_trees = 24;
    ml::RandomForest rf(fc);
    rf.fit(x, y, 5);
    return rf.predict(x);
  };
  auto timed = [&](std::vector<int>& pred) {
    auto t0 = std::chrono::steady_clock::now();
    pred = fit_once();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  const std::size_t par_threads = core::threads_from_env();
  core::set_global_threads(1);
  std::vector<int> pred_seq;
  double t_seq = timed(pred_seq);
  core::set_global_threads(par_threads);
  std::vector<int> pred_par;
  double t_par = timed(pred_par);

  ml::check_internal(pred_seq == pred_par,
                     "substrate probe: parallel forest differs from sequential");
  core::CellSummary s;
  s.train_seconds = t_par;
  s.extra.set("threads", core::Json(par_threads));
  s.extra.set("seq_seconds", core::Json(t_seq));
  s.extra.set("par_seconds", core::Json(t_par));
  s.extra.set("speedup", core::Json(t_par > 0 ? t_seq / t_par : 0.0));
  s.extra.set("bit_identical", core::Json(true));
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  auto sup = bench::make_supervisor("fig6", argc, argv);
  core::BenchmarkEnv env;
  const auto task = dataset::TaskId::VpnApp;

  auto probe = sup.run_cell({"fig6", "substrate", "seq_vs_par", ""},
                            [](core::CellContext&) { return substrate_probe(); });

  // Baseline: Random Forest (also warms the task dataset before the batch).
  core::ScenarioOptions opts;
  opts.split = dataset::SplitPolicy::PerFlow;
  auto rf = bench::run_shallow_cell(sup, env, "fig6", "RF", "baseline", task,
                                    core::ShallowKind::RandomForest, true, opts);
  const double rf_train = rf.ok() && rf.summary.train_seconds > 0
                              ? rf.summary.train_seconds
                              : 1.0;
  const double rf_test =
      rf.ok() && rf.summary.test_seconds > 0 ? rf.summary.test_seconds : 1.0;

  // One batch of independent (model × frozen/unfrozen) cells; with
  // --parallel-cells N the supervisor runs up to N of them concurrently.
  const auto kinds = replearn::all_model_kinds();
  bench::CellBatch batch;
  for (auto kind : kinds) {
    for (bool frozen : {true, false}) {
      core::ScenarioOptions dopts;
      dopts.split = dataset::SplitPolicy::PerFlow;
      dopts.frozen = frozen;
      batch.add({"fig6", replearn::to_string(kind),
                 frozen ? "frozen" : "unfrozen",
                 core::scenario_cell_key(
                     task, "timing:" + replearn::to_string(kind), dopts)},
                [&env, task, kind, dopts](core::CellContext& ctx) {
                  core::ScenarioOptions o = dopts;
                  ctx.apply(o);
                  auto s = core::summarize(
                      core::run_packet_scenario(env, task, kind, o));
                  // The bundle is pre-trained (and cached) by now; record
                  // its size.
                  s.extra.set("params", core::Json(env.pretrained(
                                                          kind,
                                                          replearn::TaskMode::Packet,
                                                          ctx.cancel)
                                                       .encoder->param_count()));
                  return s;
                });
    }
  }
  auto outcomes = batch.run(sup);

  core::MarkdownTable table{{"Model", "Train x (frozen)", "Train x (unfrozen)",
                             "Inference x", "Params"}};
  table.add_row({"RF (baseline)", rf.ok() ? "1.0" : bench::cell_ac_f1(rf), "-",
                 rf.ok() ? "1.0" : bench::cell_ac_f1(rf), "-"});

  for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
    const auto& frozen_outcome = outcomes[2 * ki];
    const auto& unfrozen_outcome = outcomes[2 * ki + 1];
    auto ratio = [&](const core::CellOutcome& o, double seconds, double base) {
      return core::RunSupervisor::format_cell(
          o, core::MarkdownTable::num(seconds / base, 1));
    };
    std::string params = "-";
    for (const auto* o : {&frozen_outcome, &unfrozen_outcome})
      if (o->ok())
        if (const core::Json* p = o->summary.extra.find("params"))
          params = std::to_string(static_cast<std::size_t>(p->number_or(0)));
    table.add_row(
        {replearn::to_string(kinds[ki]),
         ratio(frozen_outcome, frozen_outcome.summary.train_seconds, rf_train),
         ratio(unfrozen_outcome, unfrozen_outcome.summary.train_seconds, rf_train),
         ratio(unfrozen_outcome, unfrozen_outcome.summary.test_seconds, rf_test),
         params});
  }

  core::print_table(
      "Figure 6 — Training/inference time relative to the RF baseline (VPN-app, "
      "per-flow split)",
      table);
  if (probe.ok()) {
    const core::Json* sp = probe.summary.extra.find("speedup");
    const core::Json* th = probe.summary.extra.find("threads");
    std::printf("Substrate: forest fit at %zu thread(s) vs 1: %.2fx, bit-identical\n",
                th ? static_cast<std::size_t>(th->number_or(1)) : 1,
                sp ? sp->number_or(0) : 0.0);
  }
  return sup.finalize() ? 0 : 1;
}
