// bench_serve: robustness benchmark for the online serving engine. A
// trafficgen trace is replayed through serve::ServeEngine as an arrival
// stream; cells probe the engine's steady-state capacity, then push offered
// load at 0.5x / 1x / 2x of it and finally replay fault-injected sequences
// (reorder / duplicate / mid-flow truncation) under both calm and overload
// pressure. The engine must survive every cell with bounded memory, and the
// artifact records the evidence: latency percentiles, flows/sec, shed and
// eviction counters, plus a snapshot timeline whose counters json_check
// verifies are monotone.
//
// Offered load is modelled in deterministic ticks, not wall time: one
// pump() per tick processes at most batch_size packets, so offering
// ratio x batch_size packets per tick is an offered:capacity ratio of
// `ratio` by construction. At 2x the queue saturates and the shed ladder
// must engage — observably, without crashing and within the table's
// bytes_cap().
//
// Extra flags on top of the common bench CLI:
//   --offered-load <pps>   rewrite replay timestamps to this packets/sec
//   --duration-s <n>       stream-seconds of traffic per load cell
//   --max-flows <n>        flow-table hard bound
//   --shards <n>           flow-table shard count
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "core/artifact.h"
#include "net/fault.h"
#include "net/replay.h"
#include "serve/classifier.h"
#include "serve/engine.h"
#include "serve/flow_features.h"
#include "trafficgen/datasets.h"

using namespace sugar;

namespace {

struct ServeCliOptions {
  double offered_pps = 0;     // 0: keep captured timestamps
  double duration_s = 4.0;    // stream-seconds per load cell
  std::size_t max_flows = 0;  // 0: derived from the trace
  std::size_t shards = 8;
  std::size_t queue_capacity = 2048;
  std::size_t batch_size = 256;
};

bool parse_serve_flags(const std::vector<std::string>& args, ServeCliOptions& out,
                       std::string& error) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&](double& dst) {
      if (i + 1 >= args.size()) {
        error = "missing value for " + arg;
        return false;
      }
      char* end = nullptr;
      dst = std::strtod(args[++i].c_str(), &end);
      if (end == nullptr || *end != '\0' || args[i].empty()) {
        error = "malformed value for " + arg + " '" + args[i] + "'";
        return false;
      }
      return true;
    };
    double v = 0;
    auto range = [&](bool ok) {
      if (!ok && error.empty())
        error = "out-of-range value for " + arg + " '" + args[i] + "'";
      return ok;
    };
    if (arg == "--offered-load") {
      if (!value(v) || !range(v >= 0)) return false;
      out.offered_pps = v;
    } else if (arg == "--duration-s") {
      if (!value(v) || !range(v > 0)) return false;
      out.duration_s = v;
    } else if (arg == "--max-flows") {
      if (!value(v) || !range(v >= 1)) return false;
      out.max_flows = static_cast<std::size_t>(v);
    } else if (arg == "--shards") {
      if (!value(v) || !range(v >= 1)) return false;
      out.shards = static_cast<std::size_t>(v);
    } else if (arg == "--queue-capacity") {
      if (!value(v) || !range(v >= 1)) return false;
      out.queue_capacity = static_cast<std::size_t>(v);
    } else if (arg == "--batch-size") {
      if (!value(v) || !range(v >= 1)) return false;
      out.batch_size = static_cast<std::size_t>(v);
    } else {
      error = "unknown flag '" + arg + "'";
      return false;
    }
  }
  return true;
}

struct GroundTruth {
  std::unordered_map<net::FlowKey, int, net::FlowKeyHash> label_of;
};

/// One simulated run: offers `ratio x batch_size` packets per tick from a
/// looping replay source, pumps once per tick, snapshots counters on a
/// fixed cadence, then drains and flushes. Returns the summary the cell
/// reports.
core::CellSummary run_stream_cell(const std::vector<net::Packet>& stream,
                                  const ServeCliOptions& cli, double ratio,
                                  std::size_t total_packets,
                                  std::shared_ptr<const serve::FlowClassifier> clf,
                                  const GroundTruth& truth) {
  serve::ServeConfig cfg;
  cfg.table.shards = cli.shards;
  cfg.table.max_flows = cli.max_flows;
  cfg.queue_capacity = cli.queue_capacity;
  cfg.batch_size = cli.batch_size;
  cfg.record_verdicts = true;
  serve::ServeEngine engine(cfg, std::move(clf));

  net::ReplayOptions ropts;
  ropts.loops = 0;  // loop forever; total_packets bounds the run
  ropts.offered_pps = cli.offered_pps;
  net::ReplaySource source(stream, ropts);

  const auto per_tick = static_cast<std::size_t>(
      std::max(1.0, ratio * static_cast<double>(cli.batch_size)));
  const std::size_t snapshot_every =
      std::max<std::size_t>(1, total_packets / per_tick / 16);

  std::vector<serve::ServeCounters> snapshots;
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t offered = 0, tick = 0;
  net::Packet pkt;
  while (offered < total_packets) {
    for (std::size_t i = 0; i < per_tick && offered < total_packets; ++i) {
      if (!source.next(pkt)) break;
      engine.offer(pkt);  // a false return is the backpressure drop — counted
      ++offered;
    }
    engine.pump();
    if (++tick % snapshot_every == 0)
      snapshots.push_back(engine.stats().counters);
  }
  engine.drain();
  engine.flush();
  snapshots.push_back(engine.stats().counters);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Score the verdicts against generator truth (flows whose key has no
  // labelled ground truth — spurious traffic — are excluded).
  const auto verdicts = engine.take_verdicts();
  std::size_t scored = 0, correct = 0;
  for (const auto& v : verdicts) {
    auto it = truth.label_of.find(v.key);
    if (it == truth.label_of.end() || it->second < 0) continue;
    ++scored;
    if (v.label == it->second) ++correct;
  }

  const serve::ServeStats stats = engine.stats();
  core::CellSummary s;
  s.accuracy = scored > 0 ? static_cast<double>(correct) / scored : 0.0;
  s.macro_f1 = s.accuracy;  // single headline number for format_cell
  s.n_test = scored;
  s.test_seconds = wall;

  core::Json serve_json = stats.to_json();
  serve_json.set("offered_ratio", core::Json(ratio));
  serve_json.set("verdicts", core::Json(verdicts.size()));
  serve_json.set(
      "packets_per_s",
      core::Json(wall > 0 ? static_cast<double>(
                                stats.counters.packets_processed) / wall
                          : 0.0));
  serve_json.set(
      "flows_per_s",
      core::Json(wall > 0
                     ? static_cast<double>(stats.counters.flows_created) / wall
                     : 0.0));
  core::Json snaps = core::Json::array();
  for (const auto& c : snapshots) snaps.push(c.to_json());
  serve_json.set("snapshots", snaps);
  s.extra.set("serve", serve_json);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  std::vector<std::string> extra;
  auto sup_cfg = core::parse_bench_cli("serve", argc, argv, error, &extra);
  ServeCliOptions cli;
  if (sup_cfg && !parse_serve_flags(extra, cli, error)) sup_cfg.reset();
  if (!sup_cfg) {
    std::fprintf(stderr, "bench_serve: %s\n%s", error.c_str(),
                 core::bench_usage("serve").c_str());
    std::fprintf(stderr,
                 "  --offered-load <pps>     replay at this packets/sec (0: captured)\n"
                 "  --duration-s <n>         stream-seconds per load cell\n"
                 "  --max-flows <n>          flow-table hard bound\n"
                 "  --shards <n>             flow-table shard count\n"
                 "  --queue-capacity <n>     bounded ingest queue size\n"
                 "  --batch-size <n>         packets per pump round\n");
    return 2;
  }
  core::RunSupervisor sup(std::move(*sup_cfg));

  // Trace + classifier setup (outside the cells: shared fixture).
  const core::EnvConfig env_cfg = core::EnvConfig::from_env();
  trafficgen::GenOptions gen;
  gen.seed = env_cfg.seed;
  gen.flows_per_class = env_cfg.flows_per_class_iscx;
  gen.spurious_fraction = env_cfg.iscx_spurious;
  const auto trace = trafficgen::generate_iscx_vpn(gen);
  std::printf("bench_serve: trace %zu packets, %zu flows\n", trace.size(),
              trace.num_flows());

  std::vector<int> packet_labels(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i)
    packet_labels[i] = trace.labels[i].cls;
  serve::FlowFeatureConfig fcfg;
  const auto flows = serve::batch_flow_features(trace.packets, &packet_labels, fcfg);
  GroundTruth truth;
  for (std::size_t i = 0; i < flows.keys.size(); ++i)
    truth.label_of.emplace(flows.keys[i], flows.labels[i]);

  // Spurious-only flows carry label -1; the forest trains on labelled
  // traffic only (scoring skips unlabelled flows as well).
  std::vector<std::size_t> labelled;
  int num_classes = 0;
  for (std::size_t i = 0; i < flows.labels.size(); ++i) {
    if (flows.labels[i] < 0) continue;
    labelled.push_back(i);
    num_classes = std::max(num_classes, flows.labels[i] + 1);
  }
  if (labelled.empty() || num_classes < 2) {
    std::fprintf(stderr, "bench_serve: trace produced no labelled flows\n");
    return 1;
  }
  ml::Matrix train_x(labelled.size(), flows.x.cols());
  std::vector<int> train_y(labelled.size());
  for (std::size_t r = 0; r < labelled.size(); ++r) {
    std::copy_n(flows.x.row(labelled[r]), flows.x.cols(), train_x.row(r));
    train_y[r] = flows.labels[labelled[r]];
  }

  ml::ForestConfig forest_cfg;
  forest_cfg.num_trees = 24;
  std::shared_ptr<const serve::FlowClassifier> clf =
      serve::fit_forest_classifier(train_x, train_y, num_classes, forest_cfg);
  std::printf("bench_serve: classifier %zu labelled flows, %d classes\n",
              labelled.size(), num_classes);

  if (cli.max_flows == 0)
    cli.max_flows = std::max<std::size_t>(64, trace.num_flows() / 2);

  // The stream length of every cell, in packets: enough ticks at 1x to
  // exercise the ladder, scaled by --duration-s.
  const auto total_packets = static_cast<std::size_t>(
      std::max(1.0, cli.duration_s * 16.0) * static_cast<double>(cli.batch_size));

  auto add_stream_cell = [&](bench::CellBatch& batch, std::string row,
                             std::string col, std::vector<net::Packet> stream,
                             double ratio) {
    core::CellSpec spec{"serve", row, col,
                        core::generic_cell_key({"serve", row, col})};
    batch.add(std::move(spec), [&cli, &truth, clf, total_packets, ratio,
                                stream = std::move(stream)](core::CellContext&) {
      return run_stream_cell(stream, cli, ratio, total_packets, clf, truth);
    });
  };

  // Load ladder: offered:capacity at 0.5x (calm), 1.0x (saturation
  // boundary) and 2.0x (sustained overload — the shed ladder must engage).
  bench::CellBatch load_cells;
  for (double ratio : {0.5, 1.0, 2.0}) {
    char col[16];
    std::snprintf(col, sizeof col, "%.1fx", ratio);
    add_stream_cell(load_cells, "load", col, trace.packets, ratio);
  }

  // Fault matrix: every delivery fault under calm and overload pressure.
  const net::SequenceFault kFaults[] = {net::SequenceFault::ReorderWindow,
                                        net::SequenceFault::DuplicateDelivery,
                                        net::SequenceFault::TruncateMidFlow};
  for (auto fault : kFaults) {
    net::FaultInjector injector(env_cfg.seed * 1000003 +
                                static_cast<std::uint64_t>(fault));
    auto mutated = injector.mutate_sequence(trace.packets, fault);
    for (double ratio : {0.5, 2.0}) {
      char col[16];
      std::snprintf(col, sizeof col, "%.1fx", ratio);
      add_stream_cell(load_cells, "fault " + net::to_string(fault), col,
                      mutated, ratio);
    }
  }

  auto outcomes = load_cells.run(sup);

  std::printf("\n| cell | load | verdict acc | p99 us | shed/evict |\n");
  std::printf("|---|---|---|---|---|\n");
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& spec = load_cells.specs[i];
    const auto& o = outcomes[i];
    std::string detail = "FAILED";
    if (o.ok()) {
      const core::Json* serve = o.summary.extra.find("serve");
      const core::Json* lat = serve ? serve->find("latency") : nullptr;
      const core::Json* ctr = serve ? serve->find("counters") : nullptr;
      double p99 = lat && lat->find("p99_us") ? lat->find("p99_us")->number_or(0) : 0;
      auto counter = [&](const char* name) -> double {
        const core::Json* v = ctr ? ctr->find(name) : nullptr;
        return v ? v->number_or(0) : 0;
      };
      char buf[128];
      std::snprintf(buf, sizeof buf, "%.1f%% | %.0f | %d/%d",
                    100 * o.summary.accuracy, p99,
                    static_cast<int>(counter("packets_rejected") +
                                     counter("packets_shed_new_flow")),
                    static_cast<int>(counter("evicted_idle") +
                                     counter("evicted_early") +
                                     counter("evicted_sampled")));
      detail = buf;
    }
    std::printf("| %s | %s | %s |\n", spec.row.c_str(), spec.col.c_str(),
                detail.c_str());
  }

  return sup.finalize() ? 0 : 1;
}
