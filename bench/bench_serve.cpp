// bench_serve: robustness benchmark for the online serving engine. A
// trafficgen trace is replayed through serve::ServeEngine as an arrival
// stream; cells probe the engine's steady-state capacity, then push offered
// load at 0.5x / 1x / 2x of it and finally replay fault-injected sequences
// (reorder / duplicate / mid-flow truncation) under both calm and overload
// pressure. The engine must survive every cell with bounded memory, and the
// artifact records the evidence: latency percentiles, flows/sec, shed and
// eviction counters, plus a snapshot timeline whose counters json_check
// verifies are monotone. Two more cell families cover crash tolerance:
// crash-recovery cells kill the engine at a deterministic tick, restore from
// a checkpointed snapshot and assert bit-identical verdicts and counters
// against an uninterrupted run, and a chaos matrix injects classifier,
// flow-table-allocation and disk faults, recording circuit-breaker
// transitions and recovery accounting for json_check to validate.
//
// Offered load is modelled in deterministic ticks, not wall time: one
// pump() per tick processes at most batch_size packets, so offering
// ratio x batch_size packets per tick is an offered:capacity ratio of
// `ratio` by construction. At 2x the queue saturates and the shed ladder
// must engage — observably, without crashing and within the table's
// bytes_cap().
//
// Extra flags on top of the common bench CLI:
//   --offered-load <pps>   rewrite replay timestamps to this packets/sec
//   --duration-s <n>       stream-seconds of traffic per load cell
//   --max-flows <n>        flow-table hard bound
//   --shards <n>           flow-table shard count
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "core/artifact.h"
#include "core/chaos.h"
#include "core/io.h"
#include "net/fault.h"
#include "net/replay.h"
#include "serve/breaker.h"
#include "serve/classifier.h"
#include "serve/engine.h"
#include "serve/flow_features.h"
#include "serve/snapshot.h"
#include "trafficgen/datasets.h"

using namespace sugar;

namespace {

struct ServeCliOptions {
  double offered_pps = 0;     // 0: keep captured timestamps
  double duration_s = 4.0;    // stream-seconds per load cell
  std::size_t max_flows = 0;  // 0: derived from the trace
  std::size_t shards = 8;
  std::size_t queue_capacity = 2048;
  std::size_t batch_size = 256;
};

bool parse_serve_flags(const std::vector<std::string>& args, ServeCliOptions& out,
                       std::string& error) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&](double& dst) {
      if (i + 1 >= args.size()) {
        error = "missing value for " + arg;
        return false;
      }
      char* end = nullptr;
      dst = std::strtod(args[++i].c_str(), &end);
      if (end == nullptr || *end != '\0' || args[i].empty()) {
        error = "malformed value for " + arg + " '" + args[i] + "'";
        return false;
      }
      return true;
    };
    double v = 0;
    auto range = [&](bool ok) {
      if (!ok && error.empty())
        error = "out-of-range value for " + arg + " '" + args[i] + "'";
      return ok;
    };
    if (arg == "--offered-load") {
      if (!value(v) || !range(v >= 0)) return false;
      out.offered_pps = v;
    } else if (arg == "--duration-s") {
      if (!value(v) || !range(v > 0)) return false;
      out.duration_s = v;
    } else if (arg == "--max-flows") {
      if (!value(v) || !range(v >= 1)) return false;
      out.max_flows = static_cast<std::size_t>(v);
    } else if (arg == "--shards") {
      if (!value(v) || !range(v >= 1)) return false;
      out.shards = static_cast<std::size_t>(v);
    } else if (arg == "--queue-capacity") {
      if (!value(v) || !range(v >= 1)) return false;
      out.queue_capacity = static_cast<std::size_t>(v);
    } else if (arg == "--batch-size") {
      if (!value(v) || !range(v >= 1)) return false;
      out.batch_size = static_cast<std::size_t>(v);
    } else {
      error = "unknown flag '" + arg + "'";
      return false;
    }
  }
  return true;
}

struct GroundTruth {
  std::unordered_map<net::FlowKey, int, net::FlowKeyHash> label_of;
};

/// One simulated run: offers `ratio x batch_size` packets per tick from a
/// looping replay source, pumps once per tick, snapshots counters on a
/// fixed cadence, then drains and flushes. Returns the summary the cell
/// reports.
core::CellSummary run_stream_cell(const std::vector<net::Packet>& stream,
                                  const ServeCliOptions& cli, double ratio,
                                  std::size_t total_packets,
                                  std::shared_ptr<const serve::FlowClassifier> clf,
                                  const GroundTruth& truth) {
  serve::ServeConfig cfg;
  cfg.table.shards = cli.shards;
  cfg.table.max_flows = cli.max_flows;
  cfg.queue_capacity = cli.queue_capacity;
  cfg.batch_size = cli.batch_size;
  cfg.record_verdicts = true;
  serve::ServeEngine engine(cfg, std::move(clf));

  net::ReplayOptions ropts;
  ropts.loops = 0;  // loop forever; total_packets bounds the run
  ropts.offered_pps = cli.offered_pps;
  net::ReplaySource source(stream, ropts);

  const auto per_tick = static_cast<std::size_t>(
      std::max(1.0, ratio * static_cast<double>(cli.batch_size)));
  const std::size_t snapshot_every =
      std::max<std::size_t>(1, total_packets / per_tick / 16);

  std::vector<serve::ServeCounters> snapshots;
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t offered = 0, tick = 0;
  net::Packet pkt;
  while (offered < total_packets) {
    for (std::size_t i = 0; i < per_tick && offered < total_packets; ++i) {
      if (!source.next(pkt)) break;
      engine.offer(pkt);  // a false return is the backpressure drop — counted
      ++offered;
    }
    engine.pump();
    if (++tick % snapshot_every == 0)
      snapshots.push_back(engine.stats().counters);
  }
  engine.drain();
  engine.flush();
  snapshots.push_back(engine.stats().counters);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Score the verdicts against generator truth (flows whose key has no
  // labelled ground truth — spurious traffic — are excluded).
  const auto verdicts = engine.take_verdicts();
  std::size_t scored = 0, correct = 0;
  for (const auto& v : verdicts) {
    auto it = truth.label_of.find(v.key);
    if (it == truth.label_of.end() || it->second < 0) continue;
    ++scored;
    if (v.label == it->second) ++correct;
  }

  const serve::ServeStats stats = engine.stats();
  core::CellSummary s;
  s.accuracy = scored > 0 ? static_cast<double>(correct) / scored : 0.0;
  s.macro_f1 = s.accuracy;  // single headline number for format_cell
  s.n_test = scored;
  s.test_seconds = wall;

  core::Json serve_json = stats.to_json();
  serve_json.set("offered_ratio", core::Json(ratio));
  serve_json.set("verdicts", core::Json(verdicts.size()));
  serve_json.set(
      "packets_per_s",
      core::Json(wall > 0 ? static_cast<double>(
                                stats.counters.packets_processed) / wall
                          : 0.0));
  serve_json.set(
      "flows_per_s",
      core::Json(wall > 0
                     ? static_cast<double>(stats.counters.flows_created) / wall
                     : 0.0));
  core::Json snaps = core::Json::array();
  for (const auto& c : snapshots) snaps.push(c.to_json());
  serve_json.set("snapshots", snaps);
  s.extra.set("serve", serve_json);
  return s;
}

/// Deterministic, resumable replay cursor: packet `pos` is the stream
/// repeated with its whole time span added per loop, so timestamps advance
/// monotonically and any absolute position can be regenerated after a
/// restore — no iterator state to lose in a crash.
struct LoopedStream {
  const std::vector<net::Packet>* pkts = nullptr;
  std::uint64_t span_usec = 0;

  explicit LoopedStream(const std::vector<net::Packet>& stream) : pkts(&stream) {
    for (const net::Packet& p : stream)
      span_usec = std::max(span_usec, p.ts_usec);
    span_usec += 1'000;  // inter-loop gap
  }

  [[nodiscard]] net::Packet at(std::size_t pos) const {
    net::Packet p = (*pkts)[pos % pkts->size()];
    p.ts_usec += (pos / pkts->size()) * span_usec;
    return p;
  }
};

serve::ServeConfig make_engine_cfg(const ServeCliOptions& cli) {
  serve::ServeConfig cfg;
  cfg.table.shards = cli.shards;
  cfg.table.max_flows = cli.max_flows;
  cfg.queue_capacity = cli.queue_capacity;
  cfg.batch_size = cli.batch_size;
  cfg.record_verdicts = true;
  return cfg;
}

/// Offers per_tick packets per tick (engine.stream_pos() is the cursor) and
/// pumps once per tick, for `ticks` ticks or until the stream is exhausted.
/// Returns ticks actually run.
std::size_t drive_ticks(serve::ServeEngine& engine, const LoopedStream& ls,
                        std::size_t per_tick, std::size_t total_packets,
                        std::size_t ticks) {
  std::size_t ran = 0;
  while (ran < ticks && engine.stream_pos() < total_packets) {
    std::size_t pos = engine.stream_pos();
    for (std::size_t i = 0; i < per_tick && pos < total_packets; ++i) {
      engine.offer(ls.at(pos));
      ++pos;
    }
    engine.set_stream_pos(pos);
    engine.pump();
    ++ran;
  }
  return ran;
}

bool verdicts_equal(const std::vector<serve::Verdict>& a,
                    const std::vector<serve::Verdict>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].key != b[i].key || a[i].label != b[i].label ||
        a[i].packets != b[i].packets ||
        a[i].feature_packets != b[i].feature_packets ||
        a[i].reason != b[i].reason ||
        a[i].first_ts_usec != b[i].first_ts_usec ||
        a[i].last_ts_usec != b[i].last_ts_usec)
      return false;
  }
  return true;
}

std::string snapshot_dir() {
  const char* dir = std::getenv("SUGAR_SNAPSHOT_DIR");
  return dir && *dir ? std::string(dir) : std::string(".");
}

/// Crash-recovery cell: run the stream uninterrupted, then re-run it with a
/// kill at tick `kill_tick` — snapshot, destroy the engine, restore into a
/// fresh one and continue from the recorded stream position. The two runs
/// must agree bit-for-bit on every verdict and every counter; `identical`
/// in the artifact is that assertion, and the counter pair at the crash
/// boundary lets json_check verify restore monotonicity mechanically.
core::CellSummary run_crash_cell(const std::vector<net::Packet>& stream,
                                 const ServeCliOptions& cli,
                                 std::shared_ptr<const serve::FlowClassifier> clf,
                                 std::size_t kill_tick,
                                 std::size_t total_packets) {
  const LoopedStream ls(stream);
  const std::size_t per_tick = cli.batch_size;
  const auto t0 = std::chrono::steady_clock::now();

  // Baseline: never interrupted.
  std::vector<serve::Verdict> base_verdicts;
  serve::ServeCounters base_counters;
  {
    serve::ServeEngine engine(make_engine_cfg(cli), clf);
    drive_ticks(engine, ls, per_tick, total_packets, ~std::size_t{0});
    engine.drain();
    engine.flush();
    base_verdicts = engine.take_verdicts();
    base_counters = engine.stats().counters;
  }

  // Crashed run: kill at tick k, snapshot, restore, replay the rest.
  const std::string path =
      snapshot_dir() + "/bench_serve_crash_" + std::to_string(kill_tick) + ".snap";
  serve::ServeCounters kill_counters;
  serve::SnapshotOutcome saved, restored;
  std::vector<serve::Verdict> crash_verdicts;
  serve::ServeCounters crash_counters;
  serve::RecoveryStats recovery;
  {
    serve::ServeEngine engine(make_engine_cfg(cli), clf);
    drive_ticks(engine, ls, per_tick, total_packets, kill_tick);
    saved = engine.save_snapshot(path);
    kill_counters = engine.stats().counters;
    // Engine destroyed here — the simulated crash.
  }
  {
    serve::ServeEngine engine(make_engine_cfg(cli), clf);
    restored = engine.restore_snapshot(path);
    if (restored.ok()) {
      drive_ticks(engine, ls, per_tick, total_packets, ~std::size_t{0});
      engine.drain();
      engine.flush();
    }
    crash_verdicts = engine.take_verdicts();
    crash_counters = engine.stats().counters;
    recovery = engine.recovery();
  }
  core::real_io().remove_file(path);

  const bool counters_ok =
      base_counters.to_values() == crash_counters.to_values();
  const bool identical = saved.ok() && restored.ok() && counters_ok &&
                         verdicts_equal(base_verdicts, crash_verdicts);

  core::CellSummary s;
  s.accuracy = identical ? 1.0 : 0.0;
  s.macro_f1 = s.accuracy;
  s.n_test = crash_verdicts.size();
  s.test_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  core::Json j = core::Json::object();
  j.set("kill_tick", core::Json(kill_tick));
  j.set("save_ok", core::Json(saved.ok()));
  j.set("restore_ok", core::Json(restored.ok()));
  j.set("counters_identical", core::Json(counters_ok));
  j.set("verdicts_identical",
        core::Json(verdicts_equal(base_verdicts, crash_verdicts)));
  j.set("identical", core::Json(identical));
  j.set("verdicts", core::Json(crash_verdicts.size()));
  j.set("recovery", recovery.to_json());
  // Counter timeline across the crash boundary: at-kill must be <= final
  // field-for-field (json_check enforces).
  core::Json snaps = core::Json::array();
  snaps.push(kill_counters.to_json());
  snaps.push(crash_counters.to_json());
  j.set("snapshots", std::move(snaps));
  s.extra.set("crash_recovery", std::move(j));
  if (!identical) {
    std::fprintf(stderr,
                 "bench_serve: crash cell kill_tick=%zu NOT identical "
                 "(save=%s restore=%s counters=%d verdicts %zu vs %zu)\n",
                 kill_tick, to_string(saved.error), to_string(restored.error),
                 counters_ok ? 1 : 0, base_verdicts.size(),
                 crash_verdicts.size());
  }
  return s;
}

enum class ChaosMode { kBreaker, kAlloc, kIo };

/// Chaos-matrix cell: one deterministic chaos configuration per mode.
///   breaker  classifier faults + latency spikes; the circuit breaker must
///            trip to the heuristic fallback and recover via half-open
///            probes (its transitions land in the artifact for json_check)
///   alloc    flow-table allocation failures surface as flows_rejected_full
///   io       snapshot writes run through ChaosIo (disk-full, short write,
///            rename failure); a final clean save must still restore
core::CellSummary run_chaos_cell(const std::vector<net::Packet>& stream,
                                 const ServeCliOptions& cli,
                                 std::shared_ptr<const serve::FlowClassifier> clf,
                                 std::shared_ptr<const serve::FlowClassifier> fallback,
                                 std::uint64_t seed, ChaosMode mode,
                                 std::size_t total_packets) {
  core::ChaosConfig ccfg;
  ccfg.enabled = true;
  ccfg.seed = seed;
  ccfg.stall_usec = 200;
  ccfg.classifier_delay_usec = 200;
  switch (mode) {
    case ChaosMode::kBreaker:
      ccfg.with(core::ChaosSite::kClassifierFault, 0.5)
          .with(core::ChaosSite::kClassifierDelay, 0.05);
      break;
    case ChaosMode::kAlloc:
      ccfg.with(core::ChaosSite::kFlowTableAlloc, 0.25);
      break;
    case ChaosMode::kIo:
      ccfg.with(core::ChaosSite::kIoWriteFail, 0.30)
          .with(core::ChaosSite::kIoShortWrite, 0.30)
          .with(core::ChaosSite::kIoRenameFail, 0.20);
      break;
  }
  core::ChaosInjector chaos(ccfg);
  core::ChaosIo chaos_io(chaos);

  serve::BreakerConfig bcfg;
  bcfg.failure_threshold = 2;
  bcfg.open_cooldown_calls = 8;
  bcfg.half_open_successes = 2;
  bcfg = serve::BreakerConfig::from_env(bcfg);
  auto breaker = std::make_shared<serve::CircuitBreakerClassifier>(
      *clf, *fallback, bcfg, mode == ChaosMode::kBreaker ? &chaos : nullptr);

  serve::ServeConfig cfg = make_engine_cfg(cli);
  cfg.chaos = &chaos;
  cfg.fallback = fallback;
  serve::ServeEngine engine(
      cfg, mode == ChaosMode::kBreaker
               ? std::static_pointer_cast<const serve::FlowClassifier>(breaker)
               : clf);

  const LoopedStream ls(stream);
  const std::string path = snapshot_dir() + "/bench_serve_chaos.snap";
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t tick = 0;
  while (engine.stream_pos() < total_packets) {
    drive_ticks(engine, ls, cli.batch_size, total_packets, 1);
    // The io cell checkpoints on a cadence through the fault-injecting Io;
    // failed saves are counted, never fatal.
    if (mode == ChaosMode::kIo && ++tick % 4 == 0)
      engine.save_snapshot(path, &chaos_io);
  }
  engine.drain();
  engine.flush();

  bool final_restore_ok = true;
  if (mode == ChaosMode::kIo) {
    // After the storm: one clean save must restore into a fresh engine.
    final_restore_ok = false;
    if (engine.save_snapshot(path).ok()) {
      serve::ServeEngine fresh(make_engine_cfg(cli), clf);
      final_restore_ok = fresh.restore_snapshot(path).ok();
    }
  }
  core::real_io().remove_file(path);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const auto verdicts = engine.take_verdicts();
  const serve::ServeStats stats = engine.stats();
  const auto bc = breaker->counters();

  core::CellSummary s;
  s.accuracy = mode == ChaosMode::kBreaker && bc.trips > 0 && bc.recoveries > 0
                   ? 1.0
                   : (mode == ChaosMode::kBreaker ? 0.0 : 1.0);
  s.macro_f1 = s.accuracy;
  s.n_test = verdicts.size();
  s.test_seconds = wall;

  core::Json j = core::Json::object();
  j.set("mode", core::Json(mode == ChaosMode::kBreaker
                               ? "breaker"
                               : (mode == ChaosMode::kAlloc ? "alloc" : "io")));
  j.set("chaos", chaos.to_json());
  j.set("stats", stats.to_json());
  j.set("verdicts", core::Json(verdicts.size()));
  if (mode == ChaosMode::kBreaker) j.set("breaker", breaker->to_json());
  if (mode == ChaosMode::kIo) {
    j.set("recovery", engine.recovery().to_json());
    j.set("final_restore_ok", core::Json(final_restore_ok));
  }
  s.extra.set("chaos_cell", std::move(j));
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  std::vector<std::string> extra;
  auto sup_cfg = core::parse_bench_cli("serve", argc, argv, error, &extra);
  ServeCliOptions cli;
  if (sup_cfg && !parse_serve_flags(extra, cli, error)) sup_cfg.reset();
  if (!sup_cfg) {
    std::fprintf(stderr, "bench_serve: %s\n%s", error.c_str(),
                 core::bench_usage("serve").c_str());
    std::fprintf(stderr,
                 "  --offered-load <pps>     replay at this packets/sec (0: captured)\n"
                 "  --duration-s <n>         stream-seconds per load cell\n"
                 "  --max-flows <n>          flow-table hard bound\n"
                 "  --shards <n>             flow-table shard count\n"
                 "  --queue-capacity <n>     bounded ingest queue size\n"
                 "  --batch-size <n>         packets per pump round\n");
    return 2;
  }
  core::RunSupervisor sup(std::move(*sup_cfg));

  // Trace + classifier setup (outside the cells: shared fixture).
  const core::EnvConfig env_cfg = core::EnvConfig::from_env();
  trafficgen::GenOptions gen;
  gen.seed = env_cfg.seed;
  gen.flows_per_class = env_cfg.flows_per_class_iscx;
  gen.spurious_fraction = env_cfg.iscx_spurious;
  const auto trace = trafficgen::generate_iscx_vpn(gen);
  std::printf("bench_serve: trace %zu packets, %zu flows\n", trace.size(),
              trace.num_flows());

  std::vector<int> packet_labels(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i)
    packet_labels[i] = trace.labels[i].cls;
  serve::FlowFeatureConfig fcfg;
  const auto flows = serve::batch_flow_features(trace.packets, &packet_labels, fcfg);
  GroundTruth truth;
  for (std::size_t i = 0; i < flows.keys.size(); ++i)
    truth.label_of.emplace(flows.keys[i], flows.labels[i]);

  // Spurious-only flows carry label -1; the forest trains on labelled
  // traffic only (scoring skips unlabelled flows as well).
  std::vector<std::size_t> labelled;
  int num_classes = 0;
  for (std::size_t i = 0; i < flows.labels.size(); ++i) {
    if (flows.labels[i] < 0) continue;
    labelled.push_back(i);
    num_classes = std::max(num_classes, flows.labels[i] + 1);
  }
  if (labelled.empty() || num_classes < 2) {
    std::fprintf(stderr, "bench_serve: trace produced no labelled flows\n");
    return 1;
  }
  ml::Matrix train_x(labelled.size(), flows.x.cols());
  std::vector<int> train_y(labelled.size());
  for (std::size_t r = 0; r < labelled.size(); ++r) {
    std::copy_n(flows.x.row(labelled[r]), flows.x.cols(), train_x.row(r));
    train_y[r] = flows.labels[labelled[r]];
  }

  ml::ForestConfig forest_cfg;
  forest_cfg.num_trees = 24;
  std::shared_ptr<const serve::FlowClassifier> clf =
      serve::fit_forest_classifier(train_x, train_y, num_classes, forest_cfg);
  std::printf("bench_serve: classifier %zu labelled flows, %d classes\n",
              labelled.size(), num_classes);

  if (cli.max_flows == 0)
    cli.max_flows = std::max<std::size_t>(64, trace.num_flows() / 2);

  // The stream length of every cell, in packets: enough ticks at 1x to
  // exercise the ladder, scaled by --duration-s.
  const auto total_packets = static_cast<std::size_t>(
      std::max(1.0, cli.duration_s * 16.0) * static_cast<double>(cli.batch_size));

  auto add_stream_cell = [&](bench::CellBatch& batch, std::string row,
                             std::string col, std::vector<net::Packet> stream,
                             double ratio) {
    core::CellSpec spec{"serve", row, col,
                        core::generic_cell_key({"serve", row, col})};
    batch.add(std::move(spec), [&cli, &truth, clf, total_packets, ratio,
                                stream = std::move(stream)](core::CellContext&) {
      return run_stream_cell(stream, cli, ratio, total_packets, clf, truth);
    });
  };

  // Load ladder: offered:capacity at 0.5x (calm), 1.0x (saturation
  // boundary) and 2.0x (sustained overload — the shed ladder must engage).
  bench::CellBatch load_cells;
  for (double ratio : {0.5, 1.0, 2.0}) {
    char col[16];
    std::snprintf(col, sizeof col, "%.1fx", ratio);
    add_stream_cell(load_cells, "load", col, trace.packets, ratio);
  }

  // Fault matrix: every delivery fault under calm and overload pressure.
  const net::SequenceFault kFaults[] = {net::SequenceFault::ReorderWindow,
                                        net::SequenceFault::DuplicateDelivery,
                                        net::SequenceFault::TruncateMidFlow};
  for (auto fault : kFaults) {
    net::FaultInjector injector(env_cfg.seed * 1000003 +
                                static_cast<std::uint64_t>(fault));
    auto mutated = injector.mutate_sequence(trace.packets, fault);
    for (double ratio : {0.5, 2.0}) {
      char col[16];
      std::snprintf(col, sizeof col, "%.1fx", ratio);
      add_stream_cell(load_cells, "fault " + net::to_string(fault), col,
                      mutated, ratio);
    }
  }

  // Crash-recovery cells: kill at a deterministic tick, snapshot, restore
  // into a fresh engine and replay — the run must be bit-identical to an
  // uninterrupted one (verdicts and every ServeCounter).
  for (std::size_t kill_tick : {std::size_t{3}, std::size_t{11}}) {
    core::CellSpec spec{
        "serve", "crash", "k=" + std::to_string(kill_tick),
        core::generic_cell_key(
            {"serve", "crash", "k" + std::to_string(kill_tick)})};
    load_cells.add(std::move(spec),
                   [&cli, clf, kill_tick, total_packets,
                    stream = trace.packets](core::CellContext&) {
                     return run_crash_cell(stream, cli, clf, kill_tick,
                                           total_packets);
                   });
  }

  // Chaos matrix: deterministic fault injection per subsystem. The breaker
  // cell must show a full closed→open→half-open→closed timeline.
  const int classes = clf->num_classes();
  std::shared_ptr<const serve::FlowClassifier> fallback =
      std::make_shared<serve::HeuristicClassifier>(
          clf->feature_dim(), classes, [classes](const float* f) {
            const float v = f[0] > 0 ? f[0] : 0.0f;
            return static_cast<int>(
                static_cast<std::uint64_t>(v < 1e9f ? v : 1e9f) % classes);
          });
  const std::pair<ChaosMode, const char*> kChaosModes[] = {
      {ChaosMode::kBreaker, "breaker"},
      {ChaosMode::kAlloc, "alloc"},
      {ChaosMode::kIo, "io"},
  };
  for (const auto& [mode, name] : kChaosModes) {
    core::CellSpec spec{"serve", "chaos", name,
                        core::generic_cell_key({"serve", "chaos", name})};
    const std::uint64_t seed =
        env_cfg.seed * 1000003 + static_cast<std::uint64_t>(mode) + 1;
    load_cells.add(std::move(spec),
                   [&cli, clf, fallback, seed, mode, total_packets,
                    stream = trace.packets](core::CellContext&) {
                     return run_chaos_cell(stream, cli, clf, fallback, seed,
                                           mode, total_packets);
                   });
  }

  auto outcomes = load_cells.run(sup);

  std::printf("\n| cell | load | verdict acc | p99 us | shed/evict |\n");
  std::printf("|---|---|---|---|---|\n");
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& spec = load_cells.specs[i];
    const auto& o = outcomes[i];
    std::string detail = "FAILED";
    if (o.ok()) {
      const core::Json* serve = o.summary.extra.find("serve");
      const core::Json* lat = serve ? serve->find("latency") : nullptr;
      const core::Json* ctr = serve ? serve->find("counters") : nullptr;
      double p99 = lat && lat->find("p99_us") ? lat->find("p99_us")->number_or(0) : 0;
      auto counter = [&](const char* name) -> double {
        const core::Json* v = ctr ? ctr->find(name) : nullptr;
        return v ? v->number_or(0) : 0;
      };
      char buf[128];
      std::snprintf(buf, sizeof buf, "%.1f%% | %.0f | %d/%d",
                    100 * o.summary.accuracy, p99,
                    static_cast<int>(counter("packets_rejected") +
                                     counter("packets_shed_new_flow")),
                    static_cast<int>(counter("evicted_idle") +
                                     counter("evicted_early") +
                                     counter("evicted_sampled")));
      detail = buf;
    }
    std::printf("| %s | %s | %s |\n", spec.row.c_str(), spec.col.c_str(),
                detail.c_str());
  }

  return sup.finalize() ? 0 : 1;
}
