// Metric-misreporting demonstration (paper §4.2: YaTC, NetMamba and
// netFound "misleadingly use the micro F1-Score — which favours majority
// classes"). On the naturally imbalanced USTC-app test distribution, the
// same predictions score very differently under micro and macro averaging.
#include "bench_common.h"

using namespace sugar;

int main(int argc, char** argv) {
  auto sup = bench::make_supervisor("ablation_metrics", argc, argv);
  core::BenchmarkEnv env;

  core::MarkdownTable table{
      {"Model (USTC-app, per-flow frozen)", "Accuracy", "micro F1", "macro F1",
       "micro-macro gap"}};

  for (auto kind : {replearn::ModelKind::NetMamba, replearn::ModelKind::YaTC,
                    replearn::ModelKind::NetFound, replearn::ModelKind::PcapEncoder}) {
    core::ScenarioOptions opts;
    opts.split = dataset::SplitPolicy::PerFlow;
    opts.frozen = true;
    auto outcome =
        bench::run_packet_cell(sup, env, "ablation_metrics",
                               replearn::to_string(kind), "ustc-app",
                               dataset::TaskId::UstcApp, kind, opts);
    const auto& s = outcome.summary;
    table.add_row(
        {replearn::to_string(kind), bench::cell_pct_ac(outcome),
         core::RunSupervisor::format_cell(outcome,
                                          core::MarkdownTable::pct(s.micro_f1)),
         bench::cell_pct_f1(outcome),
         core::RunSupervisor::format_cell(
             outcome, core::MarkdownTable::pct(s.micro_f1 - s.macro_f1))});
  }

  core::print_table(
      "Ablation — micro vs macro F1 on the natural (imbalanced) test set: the "
      "micro score flatters majority classes",
      table);
  return sup.finalize() ? 0 : 1;
}
