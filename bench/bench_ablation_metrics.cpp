// Metric-misreporting demonstration (paper §4.2: YaTC, NetMamba and
// netFound "misleadingly use the micro F1-Score — which favours majority
// classes"). On the naturally imbalanced USTC-app test distribution, the
// same predictions score very differently under micro and macro averaging.
#include "bench_common.h"

using namespace sugar;

int main() {
  core::BenchmarkEnv env;

  core::MarkdownTable table{
      {"Model (USTC-app, per-flow frozen)", "Accuracy", "micro F1", "macro F1",
       "micro-macro gap"}};

  for (auto kind : {replearn::ModelKind::NetMamba, replearn::ModelKind::YaTC,
                    replearn::ModelKind::NetFound, replearn::ModelKind::PcapEncoder}) {
    core::ScenarioOptions opts;
    opts.split = dataset::SplitPolicy::PerFlow;
    opts.frozen = true;
    auto r = core::run_packet_scenario(env, dataset::TaskId::UstcApp, kind, opts);
    double gap = r.metrics.micro_f1 - r.metrics.macro_f1;
    table.add_row({replearn::to_string(kind),
                   core::MarkdownTable::pct(r.metrics.accuracy),
                   core::MarkdownTable::pct(r.metrics.micro_f1),
                   core::MarkdownTable::pct(r.metrics.macro_f1),
                   core::MarkdownTable::pct(gap)});
    std::fprintf(stderr, "[metrics] %s: %s\n", replearn::to_string(kind).c_str(),
                 r.metrics.to_string().c_str());
  }

  core::print_table(
      "Ablation — micro vs macro F1 on the natural (imbalanced) test set: the "
      "micro score flatters majority classes",
      table);
  return 0;
}
