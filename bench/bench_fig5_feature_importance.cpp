// Figure 5: Random-Forest feature importance on the per-packet TLS-120
// problem, with and without IP addresses. Expected shape: with IPs, the
// address octets dominate (explicit flow/class ids); without them, SeqNo /
// AckNo / timestamps — the implicit flow ids — take over, and accuracy
// stays suspiciously high: the flaw of the per-packet split made visible.
#include "bench_common.h"
#include "ml/forest.h"

using namespace sugar;

int main(int argc, char** argv) {
  auto sup = bench::make_supervisor("fig5", argc, argv);
  core::BenchmarkEnv env;
  const auto task = dataset::TaskId::Tls120;

  for (bool include_ip : {true, false}) {
    core::ScenarioOptions opts;
    opts.split = dataset::SplitPolicy::PerPacket;
    // The ranked top-10 importances ride in `extra` so journaled cells
    // still render the figure.
    core::CellSpec spec{
        "fig5", include_ip ? "with IP" : "without IP", "importance",
        core::generic_cell_key({"fig5", "rf-importance",
                                include_ip ? "ip" : "noip",
                                std::to_string(opts.seed)})};
    auto outcome = sup.run_cell(spec, [&](core::CellContext& ctx) {
      core::ScenarioOptions o = opts;
      ctx.apply(o);
      auto r = core::run_shallow_scenario(env, task, core::ShallowKind::RandomForest,
                                          include_ip, o);
      auto ranked = ml::ranked_importance(r.feature_importance, r.feature_names);
      auto s = core::summarize(r);
      core::Json top = core::Json::array();
      for (std::size_t i = 0; i < std::min<std::size_t>(10, ranked.size()); ++i) {
        core::Json item = core::Json::object();
        item.set("feature", core::Json(ranked[i].first));
        item.set("importance", core::Json(ranked[i].second));
        top.push(item);
      }
      s.extra.set("top_features", top);
      return s;
    });

    core::MarkdownTable table{{"Feature", "Importance"}};
    std::string accuracy_text;
    if (outcome.ok()) {
      accuracy_text = core::MarkdownTable::pct(outcome.summary.accuracy);
      if (const core::Json* top = outcome.summary.extra.find("top_features"))
        for (const core::Json& item : top->items()) {
          const core::Json* feature = item.find("feature");
          const core::Json* importance = item.find("importance");
          table.add_row({feature ? feature->string_or("?") : "?",
                         core::MarkdownTable::num(
                             importance ? importance->number_or(0) : 0, 3)});
        }
    } else {
      accuracy_text = core::RunSupervisor::format_cell(outcome);
      table.add_row({core::RunSupervisor::format_cell(outcome), "-"});
    }

    std::string title = std::string("Figure 5 — RF feature importance, TLS-120, "
                                    "per-packet split, ") +
                        (include_ip ? "with IP" : "without IP") +
                        " (accuracy " + accuracy_text + "%)";
    core::print_table(title, table);
  }
  return sup.finalize() ? 0 : 1;
}
