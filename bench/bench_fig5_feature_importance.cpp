// Figure 5: Random-Forest feature importance on the per-packet TLS-120
// problem, with and without IP addresses. Expected shape: with IPs, the
// address octets dominate (explicit flow/class ids); without them, SeqNo /
// AckNo / timestamps — the implicit flow ids — take over, and accuracy
// stays suspiciously high: the flaw of the per-packet split made visible.
#include "bench_common.h"
#include "ml/forest.h"

using namespace sugar;

int main() {
  core::BenchmarkEnv env;
  const auto task = dataset::TaskId::Tls120;

  for (bool include_ip : {true, false}) {
    core::ScenarioOptions opts;
    opts.split = dataset::SplitPolicy::PerPacket;
    auto r = core::run_shallow_scenario(env, task, core::ShallowKind::RandomForest,
                                        include_ip, opts);
    auto ranked = ml::ranked_importance(r.feature_importance, r.feature_names);

    core::MarkdownTable table{{"Feature", "Importance"}};
    for (std::size_t i = 0; i < std::min<std::size_t>(10, ranked.size()); ++i)
      table.add_row({ranked[i].first, core::MarkdownTable::num(ranked[i].second, 3)});

    std::string title = std::string("Figure 5 — RF feature importance, TLS-120, "
                                    "per-packet split, ") +
                        (include_ip ? "with IP" : "without IP") +
                        " (accuracy " + core::MarkdownTable::pct(r.metrics.accuracy) +
                        "%)";
    core::print_table(title, table);
  }
  return 0;
}
