// Table 8: shallow ML baselines on hand-crafted header features (Table 12),
// per-flow split, with and without IP addresses. Expected shape: tree
// ensembles beat Pcap-Encoder (and every deep model); removing IPs hurts
// everywhere, drastically on TLS-120.
#include "bench_common.h"

using namespace sugar;

int main() {
  core::BenchmarkEnv env;

  core::MarkdownTable table{{"Model", "VPN-app base", "VPN-app w/o IP",
                             "TLS-120 base", "TLS-120 w/o IP"}};

  const core::ShallowKind kinds[] = {
      core::ShallowKind::RandomForest, core::ShallowKind::XgboostStyle,
      core::ShallowKind::LightGbmStyle, core::ShallowKind::Mlp};

  for (auto kind : kinds) {
    std::vector<std::string> row{core::to_string(kind)};
    for (auto task : bench::kHardTasks) {
      for (bool include_ip : {true, false}) {
        core::ScenarioOptions opts;
        opts.split = dataset::SplitPolicy::PerFlow;
        auto r = core::run_shallow_scenario(env, task, kind, include_ip, opts);
        row.push_back(core::MarkdownTable::pct(r.metrics.macro_f1));
        std::fprintf(stderr, "[table8] %s %s ip=%d: %s (train %.1fs)\n",
                     core::to_string(kind).c_str(), dataset::to_string(task).c_str(),
                     include_ip, r.metrics.to_string().c_str(), r.train_seconds);
      }
    }
    table.add_row(std::move(row));
  }

  core::print_table(
      "Table 8 — Shallow baselines on header features (per-flow split, macro F1)",
      table);
  return 0;
}
