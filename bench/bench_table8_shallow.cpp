// Table 8: shallow ML baselines on hand-crafted header features (Table 12),
// per-flow split, with and without IP addresses. Expected shape: tree
// ensembles beat Pcap-Encoder (and every deep model); removing IPs hurts
// everywhere, drastically on TLS-120.
//
// `--scale <packets>` switches to the out-of-core mode instead: the same
// shallow-baseline claim run end-to-end through SUGC stores
// (core::run_ooc_scale) at a dataset size chosen by the caller —
// typically 10-100x the SUGAR_PAGE_CACHE_MB budget — with rows/s, cache
// hit rate and peak RSS recorded in the cell's extra payload and the
// scale pinned into the journal key.
#include <cstdlib>
#include <filesystem>

#include "bench_common.h"
#include "core/ooc.h"

using namespace sugar;

namespace {

/// Runs the out-of-core scale scenario as a single supervised cell.
int run_scale_mode(core::RunSupervisor& sup, std::uint64_t scale) {
  core::OocOptions opts;
  opts.target_packets = scale;
  const std::string dir = sup.config().json_path.empty()
                              ? "BENCH_table8.json.ooc-store"
                              : sup.config().json_path + ".ooc-store";
  std::filesystem::create_directories(dir);
  opts.dir = dir;

  core::CellSpec spec{
      "table8", "RF out-of-core", std::to_string(scale) + " packets",
      core::generic_cell_key({"ooc_scale", std::to_string(scale),
                              std::to_string(opts.seed),
                              std::to_string(opts.group_rows),
                              std::to_string(opts.forest_trees)})};
  auto outcome = sup.run_cell(spec, [&](core::CellContext&) {
    const core::OocResult res = core::run_ooc_scale(opts);
    core::CellSummary s;
    const auto num = [&](const char* key) {
      const core::Json* v = res.json.find(key);
      return v ? v->number_or(0.0) : 0.0;
    };
    s.accuracy = num("accuracy");
    s.macro_f1 = num("macro_f1");
    s.micro_f1 = num("accuracy");
    s.n_train = static_cast<std::size_t>(num("train_rows"));
    s.n_test = static_cast<std::size_t>(num("test_rows"));
    s.extra = core::Json::object().set("ooc", res.json);
    return s;
  });
  std::error_code ec;
  std::filesystem::remove(dir, ec);  // ooc removes its stores; dir is empty

  core::MarkdownTable table{{"Scale (packets)", "Macro F1", "rows/s",
                             "cache hit", "peak RSS MB"}};
  if (outcome.ok()) {
    const core::Json* ooc = outcome.summary.extra.find("ooc");
    const auto num = [&](const char* key) {
      const core::Json* v = ooc ? ooc->find(key) : nullptr;
      return v ? v->number_or(0.0) : 0.0;
    };
    char f1[32], rps[32], hit[32], rss[32];
    std::snprintf(f1, sizeof f1, "%.4f", outcome.summary.macro_f1);
    std::snprintf(rps, sizeof rps, "%.0f", num("rows_per_sec"));
    std::snprintf(hit, sizeof hit, "%.3f", num("page_cache_hit_rate"));
    std::snprintf(rss, sizeof rss, "%.1f", num("peak_rss_bytes") / 1048576.0);
    table.add_row({std::to_string(scale), f1, rps, hit, rss});
  } else {
    table.add_row({std::to_string(scale), "FAILED", "-", "-", "-"});
  }
  core::print_table("Table 8c — Out-of-core scale run (streamed SUGC pipeline)",
                    table);
  return sup.finalize() && outcome.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  std::vector<std::string> extra;
  auto sup_cfg = core::parse_bench_cli("table8", argc, argv, error, &extra);
  std::uint64_t scale = 0;
  if (sup_cfg) {
    for (std::size_t i = 0; i < extra.size() && sup_cfg; ++i) {
      if (extra[i] == "--scale" && i + 1 < extra.size()) {
        char* end = nullptr;
        const double v = std::strtod(extra[++i].c_str(), &end);
        if (end == nullptr || *end != '\0' || extra[i].empty() || v < 1) {
          error = "malformed value for --scale '" + extra[i] + "'";
          sup_cfg.reset();
        } else {
          scale = static_cast<std::uint64_t>(v);
        }
      } else {
        error = "unknown flag '" + extra[i] + "'";
        sup_cfg.reset();
      }
    }
  }
  if (!sup_cfg) {
    std::fprintf(stderr, "bench_table8: %s\n%s", error.c_str(),
                 core::bench_usage("table8").c_str());
    std::fprintf(stderr,
                 "  --scale <packets>        out-of-core mode: stream the "
                 "pipeline over this many generated packets\n");
    return 2;
  }
  core::RunSupervisor sup(std::move(*sup_cfg));
  if (scale > 0) return run_scale_mode(sup, scale);
  core::BenchmarkEnv env;

  core::MarkdownTable table{{"Model", "VPN-app base", "VPN-app w/o IP",
                             "TLS-120 base", "TLS-120 w/o IP"}};

  const core::ShallowKind kinds[] = {
      core::ShallowKind::RandomForest, core::ShallowKind::XgboostStyle,
      core::ShallowKind::LightGbmStyle, core::ShallowKind::Mlp};

  for (auto kind : kinds) {
    std::vector<std::string> row{core::to_string(kind)};
    for (auto task : bench::kHardTasks) {
      for (bool include_ip : {true, false}) {
        core::ScenarioOptions opts;
        opts.split = dataset::SplitPolicy::PerFlow;
        auto outcome = bench::run_shallow_cell(
            sup, env, "table8", core::to_string(kind),
            dataset::to_string(task) + (include_ip ? " base" : " w/o IP"), task,
            kind, include_ip, opts);
        row.push_back(bench::cell_pct_f1(outcome));
      }
    }
    table.add_row(std::move(row));
  }

  core::print_table(
      "Table 8 — Shallow baselines on header features (per-flow split, macro F1)",
      table);

  // Forest-size ladder: the quantize-once histogram substrate is what makes
  // bigger forests affordable inside the same per-cell wall budget
  // (--cell-timeout-s). 1x/4x/10x the default tree count on VPN-app base
  // features, each cell under the supervisor watchdog with the tree count
  // in its journal key.
  core::MarkdownTable ladder{{"Forest", "VPN-app base F1", "train s"}};
  for (int mult : {1, 4, 10}) {
    const int trees = 40 * mult;
    core::ScenarioOptions opts;
    opts.split = dataset::SplitPolicy::PerFlow;
    opts.forest_trees = trees;
    core::CellSpec spec{
        "table8", "RF x" + std::to_string(mult),
        "VPN-app base (" + std::to_string(trees) + " trees)",
        core::generic_cell_key(
            {"shallow_ladder", "RF", dataset::to_string(dataset::TaskId::VpnApp),
             dataset::to_string(opts.split), "ip", std::to_string(opts.seed),
             std::to_string(trees)})};
    auto outcome = sup.run_cell(spec, [&](core::CellContext& ctx) {
      core::ScenarioOptions o = opts;
      ctx.apply(o);
      return core::summarize(core::run_shallow_scenario(
          env, dataset::TaskId::VpnApp, core::ShallowKind::RandomForest, true,
          o));
    });
    char secs[32];
    std::snprintf(secs, sizeof secs, "%.2f", outcome.summary.train_seconds);
    ladder.add_row({"RF x" + std::to_string(mult) + " (" +
                        std::to_string(trees) + " trees)",
                    bench::cell_pct_f1(outcome), secs});
  }
  core::print_table("Table 8b — Forest-size ladder (binned histogram training)",
                    ladder);
  return sup.finalize() ? 0 : 1;
}
