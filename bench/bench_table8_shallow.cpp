// Table 8: shallow ML baselines on hand-crafted header features (Table 12),
// per-flow split, with and without IP addresses. Expected shape: tree
// ensembles beat Pcap-Encoder (and every deep model); removing IPs hurts
// everywhere, drastically on TLS-120.
#include "bench_common.h"

using namespace sugar;

int main(int argc, char** argv) {
  auto sup = bench::make_supervisor("table8", argc, argv);
  core::BenchmarkEnv env;

  core::MarkdownTable table{{"Model", "VPN-app base", "VPN-app w/o IP",
                             "TLS-120 base", "TLS-120 w/o IP"}};

  const core::ShallowKind kinds[] = {
      core::ShallowKind::RandomForest, core::ShallowKind::XgboostStyle,
      core::ShallowKind::LightGbmStyle, core::ShallowKind::Mlp};

  for (auto kind : kinds) {
    std::vector<std::string> row{core::to_string(kind)};
    for (auto task : bench::kHardTasks) {
      for (bool include_ip : {true, false}) {
        core::ScenarioOptions opts;
        opts.split = dataset::SplitPolicy::PerFlow;
        auto outcome = bench::run_shallow_cell(
            sup, env, "table8", core::to_string(kind),
            dataset::to_string(task) + (include_ip ? " base" : " w/o IP"), task,
            kind, include_ip, opts);
        row.push_back(bench::cell_pct_f1(outcome));
      }
    }
    table.add_row(std::move(row));
  }

  core::print_table(
      "Table 8 — Shallow baselines on header features (per-flow split, macro F1)",
      table);

  // Forest-size ladder: the quantize-once histogram substrate is what makes
  // bigger forests affordable inside the same per-cell wall budget
  // (--cell-timeout-s). 1x/4x/10x the default tree count on VPN-app base
  // features, each cell under the supervisor watchdog with the tree count
  // in its journal key.
  core::MarkdownTable ladder{{"Forest", "VPN-app base F1", "train s"}};
  for (int mult : {1, 4, 10}) {
    const int trees = 40 * mult;
    core::ScenarioOptions opts;
    opts.split = dataset::SplitPolicy::PerFlow;
    opts.forest_trees = trees;
    core::CellSpec spec{
        "table8", "RF x" + std::to_string(mult),
        "VPN-app base (" + std::to_string(trees) + " trees)",
        core::generic_cell_key(
            {"shallow_ladder", "RF", dataset::to_string(dataset::TaskId::VpnApp),
             dataset::to_string(opts.split), "ip", std::to_string(opts.seed),
             std::to_string(trees)})};
    auto outcome = sup.run_cell(spec, [&](core::CellContext& ctx) {
      core::ScenarioOptions o = opts;
      ctx.apply(o);
      return core::summarize(core::run_shallow_scenario(
          env, dataset::TaskId::VpnApp, core::ShallowKind::RandomForest, true,
          o));
    });
    char secs[32];
    std::snprintf(secs, sizeof secs, "%.2f", outcome.summary.train_seconds);
    ladder.add_row({"RF x" + std::to_string(mult) + " (" +
                        std::to_string(trees) + " trees)",
                    bench::cell_pct_f1(outcome), secs});
  }
  core::print_table("Table 8b — Forest-size ladder (binned histogram training)",
                    ladder);
  return sup.finalize() ? 0 : 1;
}
