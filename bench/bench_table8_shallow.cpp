// Table 8: shallow ML baselines on hand-crafted header features (Table 12),
// per-flow split, with and without IP addresses. Expected shape: tree
// ensembles beat Pcap-Encoder (and every deep model); removing IPs hurts
// everywhere, drastically on TLS-120.
#include "bench_common.h"

using namespace sugar;

int main(int argc, char** argv) {
  auto sup = bench::make_supervisor("table8", argc, argv);
  core::BenchmarkEnv env;

  core::MarkdownTable table{{"Model", "VPN-app base", "VPN-app w/o IP",
                             "TLS-120 base", "TLS-120 w/o IP"}};

  const core::ShallowKind kinds[] = {
      core::ShallowKind::RandomForest, core::ShallowKind::XgboostStyle,
      core::ShallowKind::LightGbmStyle, core::ShallowKind::Mlp};

  for (auto kind : kinds) {
    std::vector<std::string> row{core::to_string(kind)};
    for (auto task : bench::kHardTasks) {
      for (bool include_ip : {true, false}) {
        core::ScenarioOptions opts;
        opts.split = dataset::SplitPolicy::PerFlow;
        auto outcome = bench::run_shallow_cell(
            sup, env, "table8", core::to_string(kind),
            dataset::to_string(task) + (include_ip ? " base" : " w/o IP"), task,
            kind, include_ip, opts);
        row.push_back(bench::cell_pct_f1(outcome));
      }
    }
    table.add_row(std::move(row));
  }

  core::print_table(
      "Table 8 — Shallow baselines on header features (per-flow split, macro F1)",
      table);
  return sup.finalize() ? 0 : 1;
}
