// Extension ablation (paper §4.1: "more advanced splits are possible:
// per-session, per-client, per-location, per-time split — each stresses the
// ability of the model to generalise"). The Random Forest baseline is
// evaluated on VPN-app under all five policies. Expected shape: per-packet
// inflates; per-flow is the honest reference; per-client / per-time /
// per-session are progressively harsher generalization tests.
#include <numeric>

#include "bench_common.h"
#include "dataset/advanced_split.h"
#include "ml/forest.h"
#include "replearn/featurize.h"

using namespace sugar;

namespace {

ml::Metrics rf_under_split(const dataset::PacketDataset& ds,
                           const dataset::SplitIndices& split, std::uint64_t seed) {
  auto train_idx = dataset::balance_train(ds, split.train, seed);
  auto dtr = ds.subset(train_idx);
  auto dte = ds.subset(split.test);
  std::vector<std::size_t> itr(dtr.size()), ite(dte.size());
  std::iota(itr.begin(), itr.end(), 0);
  std::iota(ite.begin(), ite.end(), 0);
  auto x_train = replearn::header_feature_matrix(dtr, itr, {});
  auto x_test = replearn::header_feature_matrix(dte, ite, {});
  ml::RandomForest rf;
  rf.fit(x_train, dtr.label, ds.num_classes);
  return ml::evaluate(dte.label, rf.predict(x_test), ds.num_classes);
}

}  // namespace

int main() {
  core::BenchmarkEnv env;
  const auto& ds = env.task_dataset(dataset::TaskId::VpnApp);

  core::MarkdownTable table{{"Split policy", "AC", "F1", "audit"}};

  for (auto policy : {dataset::SplitPolicy::PerPacket, dataset::SplitPolicy::PerFlow}) {
    dataset::SplitOptions opts;
    opts.policy = policy;
    auto split = dataset::split_dataset(ds, opts);
    auto audit = dataset::audit_split(ds, split);
    auto m = rf_under_split(ds, split, 3);
    table.add_row({dataset::to_string(policy), core::MarkdownTable::pct(m.accuracy),
                   core::MarkdownTable::pct(m.macro_f1),
                   audit.clean() ? "clean" : "LEAKY"});
    std::fprintf(stderr, "[splits] %s: %s\n", dataset::to_string(policy).c_str(),
                 m.to_string().c_str());
  }

  for (auto policy :
       {dataset::AdvancedSplitPolicy::PerClient, dataset::AdvancedSplitPolicy::PerTime,
        dataset::AdvancedSplitPolicy::PerSession}) {
    dataset::AdvancedSplitOptions opts;
    opts.policy = policy;
    auto split = dataset::advanced_split(ds, opts);
    auto audit = dataset::audit_split(ds, split);
    auto m = rf_under_split(ds, split, 3);
    table.add_row({dataset::to_string(policy), core::MarkdownTable::pct(m.accuracy),
                   core::MarkdownTable::pct(m.macro_f1),
                   audit.clean() ? "clean" : "LEAKY"});
    std::fprintf(stderr, "[splits] %s: %s\n", dataset::to_string(policy).c_str(),
                 m.to_string().c_str());
  }

  core::print_table(
      "Ablation — RF baseline (VPN-app) under five split policies (extension of "
      "paper §4.1)",
      table);
  return 0;
}
