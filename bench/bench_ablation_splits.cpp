// Extension ablation (paper §4.1: "more advanced splits are possible:
// per-session, per-client, per-location, per-time split — each stresses the
// ability of the model to generalise"). The Random Forest baseline is
// evaluated on VPN-app under all five policies. Expected shape: per-packet
// inflates; per-flow is the honest reference; per-client / per-time /
// per-session are progressively harsher generalization tests.
#include <numeric>

#include "bench_common.h"
#include "dataset/advanced_split.h"
#include "ml/forest.h"
#include "replearn/featurize.h"

using namespace sugar;

namespace {

ml::Metrics rf_under_split(const dataset::PacketDataset& ds,
                           const dataset::SplitIndices& split, std::uint64_t seed,
                           const ml::CancelToken* cancel) {
  auto train_idx = dataset::balance_train(ds, split.train, seed);
  if (train_idx.empty() || split.test.empty())
    throw core::RunError(core::RunErrorKind::kEmptyPartition,
                         "split left train=" + std::to_string(train_idx.size()) +
                             " / test=" + std::to_string(split.test.size()) +
                             " samples");
  auto dtr = ds.subset(train_idx);
  auto dte = ds.subset(split.test);
  std::vector<std::size_t> itr(dtr.size()), ite(dte.size());
  std::iota(itr.begin(), itr.end(), 0);
  std::iota(ite.begin(), ite.end(), 0);
  auto x_train = replearn::header_feature_matrix(dtr, itr, {});
  auto x_test = replearn::header_feature_matrix(dte, ite, {});
  ml::ForestConfig cfg;
  cfg.cancel = cancel;
  ml::RandomForest rf(cfg);
  rf.fit(x_train, dtr.label, ds.num_classes);
  return ml::evaluate(dte.label, rf.predict(x_test), ds.num_classes);
}

}  // namespace

int main(int argc, char** argv) {
  auto sup = bench::make_supervisor("ablation_splits", argc, argv);
  core::BenchmarkEnv env;
  const auto& ds = env.task_dataset(dataset::TaskId::VpnApp);

  core::MarkdownTable table{{"Split policy", "AC", "F1", "audit"}};

  auto add_policy_row = [&](const std::string& name, auto make_split) {
    core::CellSpec spec{"ablation_splits", name, "rf",
                        core::generic_cell_key({"ablation_splits", name, "seed=3"})};
    auto outcome = sup.run_cell(spec, [&](core::CellContext& ctx) {
      auto split = make_split();
      auto audit = dataset::audit_split(ds, split);
      auto s = core::summarize(rf_under_split(ds, split, 3, ctx.cancel));
      s.extra.set("audit_clean", core::Json(audit.clean()));
      return s;
    });
    std::string audit_text = "?";
    if (outcome.ok()) {
      const core::Json* clean = outcome.summary.extra.find("audit_clean");
      audit_text = clean && clean->bool_or(false) ? "clean" : "LEAKY";
    }
    table.add_row({name, bench::cell_pct_ac(outcome), bench::cell_pct_f1(outcome),
                   core::RunSupervisor::format_cell(outcome, audit_text)});
  };

  for (auto policy : {dataset::SplitPolicy::PerPacket, dataset::SplitPolicy::PerFlow})
    add_policy_row(dataset::to_string(policy), [&, policy] {
      dataset::SplitOptions opts;
      opts.policy = policy;
      return dataset::split_dataset(ds, opts);
    });

  for (auto policy :
       {dataset::AdvancedSplitPolicy::PerClient, dataset::AdvancedSplitPolicy::PerTime,
        dataset::AdvancedSplitPolicy::PerSession})
    add_policy_row(dataset::to_string(policy), [&, policy] {
      dataset::AdvancedSplitOptions opts;
      opts.policy = policy;
      return dataset::advanced_split(ds, opts);
    });

  core::print_table(
      "Ablation — RF baseline (VPN-app) under five split policies (extension of "
      "paper §4.1)",
      table);
  return sup.finalize() ? 0 : 1;
}
