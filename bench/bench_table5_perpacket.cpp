// Table 5: the flawed per-packet split used by prior work. Expected shape:
// frozen results stay unimpressive, but unfrozen fine-tuning suddenly
// "reaches the promised >90%" — the leak: implicit flow ids shared between
// train and test let an end-to-end model link test packets to training
// flows.
#include "bench_common.h"

using namespace sugar;

int main(int argc, char** argv) {
  auto sup = bench::make_supervisor("table5", argc, argv);
  core::BenchmarkEnv env;

  core::MarkdownTable table{{"Model", "VPN-app frozen", "VPN-app unfrozen",
                             "TLS-120 frozen", "TLS-120 unfrozen"}};

  for (auto kind : replearn::all_model_kinds()) {
    std::vector<std::string> row{replearn::to_string(kind)};
    for (auto task : bench::kHardTasks) {
      for (bool frozen : {true, false}) {
        core::ScenarioOptions opts;
        opts.split = dataset::SplitPolicy::PerPacket;
        opts.frozen = frozen;
        auto outcome = bench::run_packet_cell(
            sup, env, "table5", replearn::to_string(kind),
            dataset::to_string(task) + (frozen ? " frozen" : " unfrozen"), task,
            kind, opts);
        row.push_back(bench::cell_ac_f1(outcome));
      }
    }
    table.add_row(std::move(row));
  }

  core::print_table("Table 5 — Per-packet split (the flawed setting), AC/F1", table);
  return sup.finalize() ? 0 : 1;
}
