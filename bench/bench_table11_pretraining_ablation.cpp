// Table 11: Pcap-Encoder pre-training ablation (per-flow split, frozen).
// Variants: full AE+Q&A pre-training, Q&A only, and the bare un-pretrained
// backbone ("T5-base" in the paper). Expected shape: Q&A is the crucial
// phase; the AE phase adds a smaller increment; no pre-training collapses.
#include "bench_common.h"
#include "replearn/pcap_encoder.h"

using namespace sugar;

namespace {

replearn::ModelBundle make_variant(core::BenchmarkEnv& env, bool ae, bool qa,
                                   const ml::CancelToken* cancel) {
  replearn::ModelBundle b = replearn::make_model(replearn::ModelKind::PcapEncoder,
                                                 replearn::TaskMode::Packet);
  replearn::PcapEncoderConfig cfg =
      static_cast<replearn::PcapEncoder&>(*b.encoder).config();
  cfg.enable_autoencoder_phase = ae;
  cfg.enable_qa_phase = qa;
  b.encoder = std::make_unique<replearn::PcapEncoder>(cfg);
  replearn::BackbonePretrainOptions opts;
  opts.pretrain.epochs = env.config().pretrain_epochs;
  opts.pretrain.cancel = cancel;
  opts.max_samples = env.config().pretrain_max_samples;
  opts.seed = env.config().seed ^ 0x11E;
  pretrain_on_backbone(b, env.backbone(), opts);
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  auto sup = bench::make_supervisor("table11", argc, argv);
  core::BenchmarkEnv env;

  core::MarkdownTable table{
      {"Variant", "VPN-app AC", "VPN-app F1", "TLS-120 AC", "TLS-120 F1"}};

  struct Variant {
    const char* name;
    bool ae, qa;
  };
  const Variant variants[] = {
      {"Autoencoder + Q&A", true, true},
      {"Q&A only", false, true},
      {"No pre-training (base)", false, false},
  };

  for (const auto& v : variants) {
    std::vector<std::string> row{v.name};
    for (auto task : bench::kHardTasks) {
      core::CellSpec spec{
          "table11", v.name, dataset::to_string(task),
          core::generic_cell_key({"table11", v.name, dataset::to_string(task)})};
      auto outcome = sup.run_cell(spec, [&](core::CellContext& ctx) {
        auto bundle = make_variant(env, v.ae, v.qa, ctx.cancel);
        core::ScenarioOptions opts;
        opts.split = dataset::SplitPolicy::PerFlow;
        opts.frozen = true;
        ctx.apply(opts);
        return core::summarize(
            core::run_packet_scenario_with_bundle(env, task, std::move(bundle), opts));
      });
      row.push_back(bench::cell_pct_ac(outcome));
      row.push_back(bench::cell_pct_f1(outcome));
    }
    table.add_row(std::move(row));
  }

  core::print_table(
      "Table 11 — Pcap-Encoder pre-training ablation (per-flow split, frozen)",
      table);
  return sup.finalize() ? 0 : 1;
}
